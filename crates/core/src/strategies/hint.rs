//! The paper's architecture (§3): separated data and metadata paths.
//!
//! Data is stored **only at the leaves** (the L1 proxies). A metadata
//! hierarchy propagates compact location hints; every L1 answers "where is
//! the nearest copy?" from its *local* hint cache with no network traffic,
//! then either fetches directly from the named peer (one cache-to-cache
//! hop) or — when the hints know of no copy — goes straight to the origin
//! server. Misses are never routed through the hierarchy.
//!
//! Hint state here follows the paper's semantics faithfully:
//!
//! * each node's hint store holds at most one 16-byte record per object,
//!   naming the nearest known copy ([`bh_cache::HintCache`]);
//! * updates propagate with a configurable delay (Figure 6); until an
//!   update lands, a node may act on stale hints — *suboptimal positives*
//!   (a farther copy than necessary), *false positives* (remote node no
//!   longer has the data: error reply, then the server), and *false
//!   negatives* (a copy exists but the hints don't know: straight to the
//!   server, which is exactly what "do not slow down misses" prescribes);
//! * the metadata hierarchy filters updates: only first-copy /
//!   last-copy transitions for the whole system reach the root
//!   (Table 5's load comparison);
//! * with unbounded stores and zero delay the per-node stores are
//!   bit-for-bit equivalent to consulting the global copy registry, and
//!   the implementation switches to that *oracle* fast path automatically.
//!
//! Push caching (§4) hooks in after each demand fetch; see [`crate::push`].

use super::{RequestCtx, Strategy};
use crate::metrics::Metrics;
use crate::outcome::AccessPath;
use crate::push::{PushFraction, PushPolicy};
use crate::topology::{NodeIdx, Topology};
use bh_cache::{HintCache, LruCache};
use bh_simcore::rng::Xoshiro256;
use bh_simcore::{ByteSize, EventQueue, SimDuration, SimTime};
use std::collections::{HashMap, HashSet};

/// Configuration of a [`HintHierarchy`].
#[derive(Debug, Clone, Copy)]
pub struct HintConfig {
    /// Per-L1 data-cache capacity.
    pub data_capacity: ByteSize,
    /// Per-node hint-store capacity ([`ByteSize::MAX`] = unbounded).
    pub store_capacity: ByteSize,
    /// Hint propagation delay (Figure 6's x-axis).
    pub delay: SimDuration,
    /// Push policy layered on top.
    pub push: PushPolicy,
}

impl Default for HintConfig {
    fn default() -> Self {
        HintConfig {
            data_capacity: ByteSize::MAX,
            store_capacity: ByteSize::MAX,
            delay: SimDuration::ZERO,
            push: PushPolicy::None,
        }
    }
}

#[derive(Debug, Default)]
struct ObjState {
    version: u32,
    holders: Vec<NodeIdx>, // sorted, typically tiny
}

/// One holder-set change, broadcast to every observer when it comes due.
/// Storing the (tiny) holder snapshot once instead of 64 per-observer
/// events keeps long-delay simulations (Figure 6's 1000-minute points)
/// within memory.
#[derive(Debug)]
struct HintEvent {
    key: u64,
    holders: Vec<NodeIdx>,
}

#[derive(Debug)]
enum HintStores {
    /// Unbounded stores + zero delay ≡ perfect knowledge of the registry.
    Oracle,
    /// Real per-node stores with delayed propagation.
    Real {
        stores: Vec<HintCache>,
        pending: EventQueue<HintEvent>,
    },
}

/// The hint-hierarchy strategy. See the [module docs](self).
#[derive(Debug)]
pub struct HintHierarchy {
    topo: Topology,
    config: HintConfig,
    caches: Vec<LruCache>,
    objs: HashMap<u64, ObjState>,
    hints: HintStores,
    rng: Xoshiro256,

    // Counters exported via finalize().
    root_updates: u64,
    directory_updates: u64,
    false_negatives: u64,
    suboptimal_positives: u64,
    pushes: u64,
    pushed_bytes: u64,
    pushed_used: u64,
    pushed_used_bytes: u64,
    demand_bytes: u64,
    pushed_pending: HashSet<(NodeIdx, u64)>,
}

impl HintHierarchy {
    /// Builds the strategy; deterministic in `seed` (used only by the
    /// hierarchical push's random target selection).
    pub fn new(topo: Topology, config: HintConfig, seed: u64) -> Self {
        let hints = if config.store_capacity.is_unlimited() && config.delay == SimDuration::ZERO {
            HintStores::Oracle
        } else {
            HintStores::Real {
                stores: (0..topo.l1_count())
                    .map(|_| HintCache::with_capacity(config.store_capacity))
                    .collect(),
                pending: EventQueue::new(),
            }
        };
        HintHierarchy {
            caches: (0..topo.l1_count())
                .map(|_| LruCache::new(config.data_capacity))
                .collect(),
            objs: HashMap::new(),
            hints,
            rng: Xoshiro256::seed_from_u64(seed ^ 0x48494E54_5F505348),
            topo,
            config,
            root_updates: 0,
            directory_updates: 0,
            false_negatives: 0,
            suboptimal_positives: 0,
            pushes: 0,
            pushed_bytes: 0,
            pushed_used: 0,
            pushed_used_bytes: 0,
            demand_bytes: 0,
            pushed_pending: HashSet::new(),
        }
    }

    /// Whether the oracle fast path is active.
    pub fn is_oracle(&self) -> bool {
        matches!(self.hints, HintStores::Oracle)
    }

    /// The configuration in use.
    pub fn config(&self) -> &HintConfig {
        &self.config
    }

    /// Read access to an L1 data cache.
    pub fn l1_cache(&self, idx: usize) -> &LruCache {
        &self.caches[idx]
    }

    /// Current fresh holders of `key` (for tests and experiments).
    pub fn holders(&self, key: u64) -> &[NodeIdx] {
        self.objs
            .get(&key)
            .map(|s| s.holders.as_slice())
            .unwrap_or(&[])
    }

    fn drain_pending(&mut self, now: SimTime) {
        let topo = self.topo.clone();
        if let HintStores::Real { stores, pending } = &mut self.hints {
            while let Some((_, ev)) = pending.pop_due(now) {
                for (observer, store) in stores.iter_mut().enumerate() {
                    match topo.nearest_holder(observer as NodeIdx, ev.holders.iter().copied()) {
                        Some(loc) => store.insert(ev.key, loc as u64),
                        None => {
                            store.remove(ev.key);
                        }
                    }
                }
            }
        }
    }

    /// Broadcasts the post-change best-copy hint for `key` to every node.
    ///
    /// This models the metadata hierarchy's propagation: each observer
    /// eventually learns the location of its *nearest* copy. With delay 0
    /// in oracle mode this is implicit (lookups consult the registry).
    fn holders_changed(&mut self, key: u64, at: SimTime) {
        if matches!(self.hints, HintStores::Oracle) {
            return;
        }
        let holders = self
            .objs
            .get(&key)
            .map(|s| s.holders.clone())
            .unwrap_or_default();
        let due = at.saturating_add(self.config.delay);
        if let HintStores::Real { pending, .. } = &mut self.hints {
            pending.schedule(due, HintEvent { key, holders });
        }
        // Zero delay means "instant propagation": apply now so the oracle
        // equivalence holds even within a single request.
        if self.config.delay == SimDuration::ZERO {
            self.drain_pending(at);
        }
    }

    fn add_holder(&mut self, key: u64, node: NodeIdx, at: SimTime) {
        let st = self.objs.entry(key).or_default();
        if let Err(pos) = st.holders.binary_search(&node) {
            st.holders.insert(pos, node);
            self.directory_updates += 1;
            if st.holders.len() == 1 {
                // First copy in the system: the update climbs to the root.
                self.root_updates += 1;
            }
            self.holders_changed(key, at);
        }
    }

    fn remove_holder(&mut self, key: u64, node: NodeIdx, at: SimTime) {
        let Some(st) = self.objs.get_mut(&key) else {
            return;
        };
        if let Ok(pos) = st.holders.binary_search(&node) {
            st.holders.remove(pos);
            self.directory_updates += 1;
            if st.holders.is_empty() {
                // Last copy gone: the non-presence advertisement reaches the root.
                self.root_updates += 1;
            }
            self.holders_changed(key, at);
        }
    }

    fn note_pushed_use(&mut self, node: NodeIdx, key: u64, size: ByteSize) {
        if self.pushed_pending.remove(&(node, key)) {
            self.pushed_used += 1;
            self.pushed_used_bytes += size.as_bytes();
        }
    }

    /// Stores a copy at `node`, maintaining holder state and hint traffic.
    fn insert_copy(
        &mut self,
        node: NodeIdx,
        key: u64,
        size: ByteSize,
        version: u32,
        at: SimTime,
        aged: bool,
    ) {
        let evicted = self.caches[node as usize].insert(key, size, version);
        for e in evicted {
            self.pushed_pending.remove(&(node, e.key));
            self.remove_holder(e.key, node, at);
        }
        if self.caches[node as usize].peek(key).is_some() {
            if aged {
                self.caches[node as usize].demote(key);
            }
            self.add_holder(key, node, at);
        }
    }

    /// Consults the requesting node's hints for `key`; returns the outcome
    /// of the remote/server fetch decision.
    fn lookup(&mut self, l1: NodeIdx, key: u64, version: u32) -> AccessPath {
        let fresh_peer_exists = self
            .objs
            .get(&key)
            .is_some_and(|s| s.holders.iter().any(|&h| h != l1));

        if matches!(self.hints, HintStores::Oracle) {
            let holders = self
                .objs
                .get(&key)
                .map(|s| s.holders.clone())
                .unwrap_or_default();
            return match self
                .topo
                .nearest_holder(l1, holders.into_iter().filter(|&h| h != l1))
            {
                Some(peer) => {
                    let size = self.caches[peer as usize]
                        .peek(key)
                        .map(|(s, _)| s)
                        .unwrap_or(ByteSize::ZERO);
                    self.note_pushed_use(peer, key, size);
                    AccessPath::RemoteHit {
                        distance: self.topo.distance(l1, peer),
                    }
                }
                None => AccessPath::ServerFetch {
                    false_positive: None,
                },
            };
        }

        let hinted = if let HintStores::Real { stores, .. } = &mut self.hints {
            stores[l1 as usize].lookup(key)
        } else {
            unreachable!("oracle handled above")
        };
        match hinted {
            Some(loc) if loc != l1 as u64 => {
                let peer = loc as NodeIdx;
                if self.caches[peer as usize].contains_fresh(key, version) {
                    let size = self.caches[peer as usize]
                        .peek(key)
                        .map(|(s, _)| s)
                        .unwrap_or(ByteSize::ZERO);
                    self.note_pushed_use(peer, key, size);
                    let distance = self.topo.distance(l1, peer);
                    // Suboptimal positive: a nearer copy existed but the
                    // (stale) hint named a farther one.
                    if distance == bh_netmodel::RemoteDistance::SameL3 {
                        let holders = self
                            .objs
                            .get(&key)
                            .map(|s| s.holders.clone())
                            .unwrap_or_default();
                        if let Some(best) = self
                            .topo
                            .nearest_holder(l1, holders.into_iter().filter(|&h| h != l1))
                        {
                            if self.topo.distance(l1, best) == bh_netmodel::RemoteDistance::SameL2 {
                                self.suboptimal_positives += 1;
                            }
                        }
                    }
                    AccessPath::RemoteHit { distance }
                } else {
                    // False positive: error reply, drop the bad hint, go to
                    // the server. No second lookup — "when the hint cache
                    // fails, it is unlikely a hit will result" (§3.1.1).
                    if let HintStores::Real { stores, .. } = &mut self.hints {
                        stores[l1 as usize].remove(key);
                    }
                    AccessPath::ServerFetch {
                        false_positive: Some(self.topo.distance(l1, peer)),
                    }
                }
            }
            _ => {
                if fresh_peer_exists {
                    self.false_negatives += 1;
                }
                AccessPath::ServerFetch {
                    false_positive: None,
                }
            }
        }
    }

    /// Hierarchical push on miss (§4.1.3) after a remote hit at `distance`.
    fn hierarchical_push(
        &mut self,
        ctx: &RequestCtx,
        distance: bh_netmodel::RemoteDistance,
        fraction: PushFraction,
    ) {
        let holders: HashSet<NodeIdx> = self.holders(ctx.key).iter().copied().collect();
        let mut targets: Vec<NodeIdx> = Vec::new();
        match distance {
            bh_netmodel::RemoteDistance::SameL2 => {
                // Level-1 subtrees under our L2 parent are single nodes:
                // push to each of them (Figure 9, object B).
                for sib in self.topo.l2_siblings(ctx.l1).collect::<Vec<_>>() {
                    if sib != ctx.l1 && !holders.contains(&sib) {
                        targets.push(sib);
                    }
                }
            }
            bh_netmodel::RemoteDistance::SameL3 => {
                // One (push-1) / half / all random node(s) in each level-2
                // subtree under the root (Figure 9, object A).
                for g in 0..self.topo.l2_count() {
                    let first = g * self.topo.l1s_per_l2();
                    let members: Vec<NodeIdx> = (first
                        ..(first + self.topo.l1s_per_l2()).min(self.topo.l1_count()))
                        .filter(|n| *n != ctx.l1 && !holders.contains(n))
                        .collect();
                    let want = fraction.targets(members.len());
                    targets.extend(pick_random(&members, want, &mut self.rng));
                }
            }
        }
        for t in targets {
            self.push_copy(t, ctx);
        }
    }

    fn push_copy(&mut self, target: NodeIdx, ctx: &RequestCtx) {
        self.insert_copy(target, ctx.key, ctx.size, ctx.version, ctx.time, false);
        if self.caches[target as usize].peek(ctx.key).is_some() {
            self.pushes += 1;
            self.pushed_bytes += ctx.size.as_bytes();
            self.pushed_pending.insert((target, ctx.key));
        }
    }
}

fn pick_random(members: &[NodeIdx], want: usize, rng: &mut Xoshiro256) -> Vec<NodeIdx> {
    if want >= members.len() {
        return members.to_vec();
    }
    // Partial Fisher–Yates over a scratch copy.
    let mut pool = members.to_vec();
    let mut out = Vec::with_capacity(want);
    for _ in 0..want {
        let i = rng.below(pool.len() as u64) as usize;
        out.push(pool.swap_remove(i));
    }
    out
}

impl Strategy for HintHierarchy {
    fn on_request(&mut self, ctx: &RequestCtx) -> AccessPath {
        self.drain_pending(ctx.time);

        // Consistency: a version bump invalidates every cached copy
        // (strong consistency, §2.2.1). Remember the old holders — they are
        // the update-push candidate list (§4.1.2).
        let mut update_push_candidates: Vec<NodeIdx> = Vec::new();
        {
            let st = self.objs.entry(ctx.key).or_default();
            if ctx.version > st.version {
                st.version = ctx.version;
                let stale = std::mem::take(&mut st.holders);
                if !stale.is_empty() {
                    self.directory_updates += stale.len() as u64;
                    self.root_updates += 1; // last-copy-gone reaches the root
                    for &h in &stale {
                        self.caches[h as usize].remove(ctx.key);
                        self.pushed_pending.remove(&(h, ctx.key));
                    }
                    self.holders_changed(ctx.key, ctx.time);
                    update_push_candidates = stale;
                }
            }
        }

        // Local hit?
        let version = self.objs[&ctx.key].version;
        if self.caches[ctx.l1 as usize].get(ctx.key, version).is_some() {
            self.note_pushed_use(ctx.l1, ctx.key, ctx.size);
            return AccessPath::L1Hit;
        }

        // Local miss: consult local hints, fetch remotely or from the server.
        let outcome = self.lookup(ctx.l1, ctx.key, version);
        self.demand_bytes += ctx.size.as_bytes();
        self.insert_copy(ctx.l1, ctx.key, ctx.size, version, ctx.time, false);

        // Push hooks.
        match (self.config.push, outcome) {
            (PushPolicy::Update, _) if !update_push_candidates.is_empty() => {
                for target in update_push_candidates {
                    if target != ctx.l1 {
                        self.insert_copy(target, ctx.key, ctx.size, version, ctx.time, true);
                        if self.caches[target as usize].peek(ctx.key).is_some() {
                            self.pushes += 1;
                            self.pushed_bytes += ctx.size.as_bytes();
                            self.pushed_pending.insert((target, ctx.key));
                        }
                    }
                }
            }
            (PushPolicy::Hierarchical(fr), AccessPath::RemoteHit { distance }) => {
                self.hierarchical_push(ctx, distance, fr);
            }
            _ => {}
        }
        outcome
    }

    fn name(&self) -> &'static str {
        match self.config.push {
            PushPolicy::None => "hint-hierarchy",
            PushPolicy::Update => "hint-update-push",
            PushPolicy::Hierarchical(_) => "hint-hierarchical-push",
        }
    }

    fn finalize(&mut self, metrics: &mut Metrics) {
        metrics.root_updates = self.root_updates;
        metrics.directory_updates = self.directory_updates;
        metrics.false_negatives = self.false_negatives;
        metrics.suboptimal_positives = self.suboptimal_positives;
        metrics.pushes = self.pushes;
        metrics.pushed_bytes = self.pushed_bytes;
        metrics.pushed_used = self.pushed_used;
        metrics.pushed_used_bytes = self.pushed_used_bytes;
        metrics.demand_bytes = self.demand_bytes;
    }

    fn queue_stats(&self) -> Option<bh_simcore::QueueStats> {
        match &self.hints {
            HintStores::Real { pending, .. } => Some(pending.stats()),
            HintStores::Oracle => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_netmodel::RemoteDistance;
    use bh_trace::WorkloadSpec;

    fn ctx_at(l1: u32, key: u64, version: u32, secs: u64) -> RequestCtx {
        RequestCtx {
            time: SimTime::from_secs(secs),
            client: bh_trace::ClientId(l1 * 256),
            l1,
            key,
            size: ByteSize::from_kb(10),
            version,
        }
    }

    fn ctx(l1: u32, key: u64, version: u32) -> RequestCtx {
        ctx_at(l1, key, version, 0)
    }

    fn topo() -> Topology {
        Topology::from_spec(&WorkloadSpec::small()) // 4 L1s, 2 per L2
    }

    fn oracle() -> HintHierarchy {
        HintHierarchy::new(topo(), HintConfig::default(), 7)
    }

    fn real(delay_secs: u64) -> HintHierarchy {
        HintHierarchy::new(
            topo(),
            HintConfig {
                delay: SimDuration::from_secs(delay_secs),
                store_capacity: ByteSize::from_mb(4),
                ..HintConfig::default()
            },
            7,
        )
    }

    #[test]
    fn oracle_mode_detection() {
        assert!(oracle().is_oracle());
        assert!(!real(0).is_oracle());
        let bounded = HintHierarchy::new(
            topo(),
            HintConfig {
                store_capacity: ByteSize::from_kb(1),
                ..HintConfig::default()
            },
            7,
        );
        assert!(!bounded.is_oracle());
    }

    #[test]
    fn miss_goes_straight_to_server_then_remote_hits() {
        let mut h = oracle();
        assert_eq!(
            h.on_request(&ctx(0, 1, 0)),
            AccessPath::ServerFetch {
                false_positive: None
            }
        );
        assert_eq!(h.on_request(&ctx(0, 1, 0)), AccessPath::L1Hit);
        assert_eq!(
            h.on_request(&ctx(1, 1, 0)),
            AccessPath::RemoteHit {
                distance: RemoteDistance::SameL2
            }
        );
        assert_eq!(
            h.on_request(&ctx(3, 1, 0)),
            AccessPath::RemoteHit {
                distance: RemoteDistance::SameL3
            }
        );
        assert_eq!(h.holders(1), &[0, 1, 3]);
    }

    #[test]
    fn real_mode_zero_delay_matches_oracle_outcomes() {
        let spec = WorkloadSpec::small().with_requests(3_000);
        let mut a = oracle();
        let mut b = real(0);
        for r in bh_trace::TraceGenerator::new(&spec, 3) {
            if !r.is_cacheable() {
                continue;
            }
            let c = RequestCtx {
                time: r.time,
                client: r.client,
                l1: spec.l1_group_of(r.client),
                key: r.object.key(),
                size: r.size,
                version: r.version,
            };
            let pa = a.on_request(&c);
            let pb = b.on_request(&c);
            assert_eq!(pa, pb, "oracle and real-mode outcomes diverged at {c:?}");
        }
    }

    #[test]
    fn version_bump_invalidates_all_copies() {
        let mut h = oracle();
        h.on_request(&ctx(0, 1, 0));
        h.on_request(&ctx(1, 1, 0));
        assert_eq!(h.holders(1).len(), 2);
        // Update: both copies invalid; straight to server (no false positive
        // in oracle mode — hints are perfectly fresh).
        assert_eq!(
            h.on_request(&ctx(2, 1, 1)),
            AccessPath::ServerFetch {
                false_positive: None
            }
        );
        assert_eq!(h.holders(1), &[2]);
    }

    #[test]
    fn delayed_hints_cause_false_negatives() {
        let mut h = real(600);
        assert_eq!(
            h.on_request(&ctx_at(0, 1, 0, 0)),
            AccessPath::ServerFetch {
                false_positive: None
            }
        );
        // 10 s later the hint (delay 600 s) has not arrived at node 3:
        // a copy exists but node 3 goes to the server — false negative.
        assert_eq!(
            h.on_request(&ctx_at(3, 1, 0, 10)),
            AccessPath::ServerFetch {
                false_positive: None
            }
        );
        let mut m = Metrics::new(&[]);
        h.finalize(&mut m);
        assert_eq!(m.false_negatives, 1);
        // After the delay passes, hints have landed: remote hit.
        assert_eq!(
            h.on_request(&ctx_at(2, 1, 0, 700)),
            AccessPath::RemoteHit {
                distance: RemoteDistance::SameL2
            },
            "node 2 should find node 3's copy (same L2) once hints propagate"
        );
    }

    #[test]
    fn stale_hint_is_false_positive() {
        let mut h = real(300);
        // Node 0 fetches; hint propagates at t=300.
        h.on_request(&ctx_at(0, 1, 0, 0));
        // t=400: node 1 knows node 0 has it.
        assert_eq!(
            h.on_request(&ctx_at(1, 1, 0, 400)),
            AccessPath::RemoteHit {
                distance: RemoteDistance::SameL2
            }
        );
        // The object is modified; node 0 and 1's copies are invalidated via
        // a fetch by node 2 — but node 3's hint still names an old holder.
        h.on_request(&ctx_at(2, 1, 1, 500));
        let out = h.on_request(&ctx_at(3, 1, 1, 510));
        assert!(
            matches!(
                out,
                AccessPath::ServerFetch {
                    false_positive: Some(_)
                }
            ),
            "stale hint should cost a wasted probe, got {out:?}"
        );
    }

    #[test]
    fn root_updates_filtered_vs_directory() {
        let mut h = oracle();
        // Three nodes fetch the same object: 3 directory updates but only
        // one first-copy event reaches the root.
        h.on_request(&ctx(0, 1, 0));
        h.on_request(&ctx(1, 1, 0));
        h.on_request(&ctx(3, 1, 0));
        let mut m = Metrics::new(&[]);
        h.finalize(&mut m);
        assert_eq!(m.directory_updates, 3);
        assert_eq!(m.root_updates, 1);
    }

    #[test]
    fn update_push_replicates_to_old_holders() {
        let mut h = HintHierarchy::new(
            topo(),
            HintConfig {
                push: PushPolicy::Update,
                ..HintConfig::default()
            },
            7,
        );
        h.on_request(&ctx(0, 1, 0));
        h.on_request(&ctx(1, 1, 0));
        h.on_request(&ctx(3, 1, 0));
        // Version bump fetched by node 2: old holders 0, 1, 3 get the new
        // version pushed.
        h.on_request(&ctx(2, 1, 5));
        assert_eq!(h.holders(1), &[0, 1, 2, 3]);
        let mut m = Metrics::new(&[]);
        h.finalize(&mut m);
        assert_eq!(m.pushes, 3);
        // A later local access at node 0 uses the pushed copy.
        assert_eq!(h.on_request(&ctx(0, 1, 5)), AccessPath::L1Hit);
        let mut m2 = Metrics::new(&[]);
        h.finalize(&mut m2);
        assert_eq!(m2.pushed_used, 1);
    }

    #[test]
    fn update_push_ages_pushed_copies() {
        let small_cap = HintConfig {
            push: PushPolicy::Update,
            data_capacity: ByteSize::from_kb(30),
            ..HintConfig::default()
        };
        let mut h = HintHierarchy::new(topo(), small_cap, 7);
        h.on_request(&ctx(0, 1, 0));
        h.on_request(&ctx(0, 2, 0));
        // Bump object 1; node 3 fetches it; push lands at node 0 *aged*.
        h.on_request(&ctx(3, 1, 1));
        assert_eq!(
            h.l1_cache(0).lru_key(),
            Some(1),
            "pushed copy must sit at the cold end"
        );
    }

    #[test]
    fn hierarchical_push_same_l2_fills_siblings() {
        let mut h = HintHierarchy::new(
            topo(),
            HintConfig {
                push: PushPolicy::Hierarchical(PushFraction::One),
                ..HintConfig::default()
            },
            7,
        );
        h.on_request(&ctx(0, 1, 0)); // node 0 holds
                                     // Node 1 remote-hits node 0 (same L2): push to all level-1 subtrees
                                     // under that L2 — here there are only nodes 0 and 1, both covered.
        h.on_request(&ctx(1, 1, 0));
        assert_eq!(h.holders(1), &[0, 1]);
        // Node 2 remote-hits at L3 distance: push-1 places one copy in each
        // level-2 subtree.
        h.on_request(&ctx(2, 1, 0));
        let holders = h.holders(1).to_vec();
        assert!(holders.contains(&2));
        assert!(
            holders.len() >= 4,
            "push-1 should seed every L2 group: {holders:?}"
        );
    }

    #[test]
    fn push_all_replicates_everywhere() {
        let mut h = HintHierarchy::new(
            topo(),
            HintConfig {
                push: PushPolicy::Hierarchical(PushFraction::All),
                ..HintConfig::default()
            },
            7,
        );
        h.on_request(&ctx(0, 1, 0));
        h.on_request(&ctx(3, 1, 0)); // L3-distance hit → push-all
        assert_eq!(h.holders(1), &[0, 1, 2, 3]);
        let mut m = Metrics::new(&[]);
        h.finalize(&mut m);
        assert_eq!(m.pushes, 2, "nodes 1 and 2 received pushes");
    }

    #[test]
    fn no_push_policy_never_pushes() {
        let mut h = oracle();
        h.on_request(&ctx(0, 1, 0));
        h.on_request(&ctx(3, 1, 0));
        let mut m = Metrics::new(&[]);
        h.finalize(&mut m);
        assert_eq!(m.pushes, 0);
        assert_eq!(m.pushed_bytes, 0);
    }

    #[test]
    fn eviction_updates_holders_and_hints() {
        let mut h = HintHierarchy::new(
            topo(),
            HintConfig {
                data_capacity: ByteSize::from_kb(20),
                ..HintConfig::default()
            },
            7,
        );
        h.on_request(&ctx(0, 1, 0));
        h.on_request(&ctx(0, 2, 0));
        h.on_request(&ctx(0, 3, 0)); // evicts key 1 at node 0
        assert!(
            h.holders(1).is_empty(),
            "evicted copy must leave the registry"
        );
        // Another node asking for key 1 now goes to the server.
        assert_eq!(
            h.on_request(&ctx(1, 1, 0)),
            AccessPath::ServerFetch {
                false_positive: None
            }
        );
    }

    #[test]
    fn bounded_hint_store_limits_reach() {
        // A tiny hint store cannot index much beyond the local cache: most
        // cross-node reuse is lost (Figure 5's left edge).
        let tiny = HintHierarchy::new(
            topo(),
            HintConfig {
                store_capacity: ByteSize::from_bytes(64),
                ..HintConfig::default()
            },
            7,
        );
        let big = HintHierarchy::new(
            topo(),
            HintConfig {
                store_capacity: ByteSize::from_mb(16),
                ..HintConfig::default()
            },
            7,
        );
        let spec = WorkloadSpec::small().with_requests(8_000);
        let run = |mut h: HintHierarchy| {
            let mut remote = 0u64;
            for r in bh_trace::TraceGenerator::new(&spec, 5) {
                if !r.is_cacheable() {
                    continue;
                }
                let c = RequestCtx {
                    time: r.time,
                    client: r.client,
                    l1: spec.l1_group_of(r.client),
                    key: r.object.key(),
                    size: r.size,
                    version: r.version,
                };
                if matches!(h.on_request(&c), AccessPath::RemoteHit { .. }) {
                    remote += 1;
                }
            }
            remote
        };
        let tiny_remote = run(tiny);
        let big_remote = run(big);
        assert!(
            tiny_remote < big_remote / 2,
            "tiny store {tiny_remote} remote hits vs big {big_remote}"
        );
    }
}
