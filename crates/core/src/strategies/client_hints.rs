//! The alternate, client-level hint configuration (Figure 4-b, §3.3).
//!
//! Here the metadata hierarchy extends past the L1 proxies to the clients:
//! each *client* consults its own hint directory and goes straight to the
//! named cache (or the server), skipping the L1 proxy's lookup hop. The
//! trade-off the paper describes: client hint stores are small, so they
//! miss more (false negatives send the client to the server even when a
//! nearby copy — possibly in its own L1! — exists), but every lookup and
//! transfer saves the proxy leg. The paper's finding for the testbed
//! parameters and the DEC trace: *"as long as client caches are large
//! enough so that the false-negative rate for the client hint caches is
//! below 50%, the alternate configuration is superior"*, topping out at
//! ≈20% better response time when client hints match proxy hit rates.
//!
//! Per-client stores for tens of thousands of clients are summarized by
//! two rules. A client always knows about objects **it accessed before**
//! (its own lookups populate its hint cache, and a client's history easily
//! fits a few thousand 16-byte records). For objects the client never
//! touched — the ones only the propagated update stream could have told it
//! about — knowledge is a deterministic Bernoulli draw with the configured
//! **false-negative rate**, the quantity the paper parameterizes by.
//!
//! Outcomes from this strategy must be priced with
//! [`crate::experiments::ClientDirect`], which charges remote and server
//! fetches from the client.

use super::{RequestCtx, Strategy};
use crate::outcome::AccessPath;
use crate::topology::{NodeIdx, Topology};
use bh_cache::LruCache;
use bh_simcore::ByteSize;
use bh_trace::ClientId;
use std::collections::{HashMap, HashSet};

/// Configuration for [`ClientHints`].
#[derive(Debug, Clone, Copy)]
pub struct ClientHintConfig {
    /// Per-L1 data-cache capacity (data still lives at the proxies).
    pub data_capacity: ByteSize,
    /// Probability a client's hint store does not know of an existing copy.
    /// 0.0 models client stores as large as the proxies'; larger values
    /// model space-constrained clients.
    pub false_negative_rate: f64,
}

impl Default for ClientHintConfig {
    fn default() -> Self {
        ClientHintConfig {
            data_capacity: ByteSize::MAX,
            false_negative_rate: 0.0,
        }
    }
}

#[derive(Debug, Default)]
struct ObjState {
    version: u32,
    /// Bumped on every holder-set change so the per-(client, object)
    /// knowledge hash re-rolls when the copy landscape changes.
    epoch: u32,
    holders: Vec<NodeIdx>,
}

/// The client-level hint strategy. See the [module docs](self).
#[derive(Debug)]
pub struct ClientHints {
    topo: Topology,
    config: ClientHintConfig,
    caches: Vec<LruCache>,
    objs: HashMap<u64, ObjState>,
    /// Hashes of (client, object) pairs the client has fetched before —
    /// those are always in the client's own hint cache.
    history: HashSet<u64>,
    false_negatives: u64,
}

impl ClientHints {
    /// Builds the strategy.
    ///
    /// # Panics
    ///
    /// Panics if `false_negative_rate` is not a probability.
    pub fn new(topo: Topology, config: ClientHintConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.false_negative_rate),
            "false_negative_rate must be a probability"
        );
        ClientHints {
            caches: (0..topo.l1_count())
                .map(|_| LruCache::new(config.data_capacity))
                .collect(),
            objs: HashMap::new(),
            history: HashSet::new(),
            false_negatives: 0,
            topo,
            config,
        }
    }

    fn history_key(client: ClientId, key: u64) -> u64 {
        let mut h = bh_simcore::rng::SplitMix64::new(key ^ ((client.0 as u64) << 32));
        h.next_u64()
    }

    /// False negatives suffered so far.
    pub fn false_negatives(&self) -> u64 {
        self.false_negatives
    }

    /// Whether this client's hint store knows about the object in its
    /// current copy-epoch: always for objects in the client's own history,
    /// a deterministic Bernoulli draw otherwise.
    fn client_knows(&self, client: ClientId, key: u64, epoch: u32) -> bool {
        if self.history.contains(&Self::history_key(client, key)) {
            return true;
        }
        if self.config.false_negative_rate <= 0.0 {
            return true;
        }
        if self.config.false_negative_rate >= 1.0 {
            return false;
        }
        let mut h = bh_simcore::rng::SplitMix64::new(
            key ^ ((client.0 as u64) << 32) ^ (epoch as u64).wrapping_mul(0x9E3779B97F4A7C15),
        );
        let u = (h.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u >= self.config.false_negative_rate
    }

    fn remove_holder(&mut self, key: u64, node: NodeIdx) {
        if let Some(st) = self.objs.get_mut(&key) {
            if let Ok(pos) = st.holders.binary_search(&node) {
                st.holders.remove(pos);
                st.epoch += 1;
            }
        }
    }

    fn insert_copy(&mut self, node: NodeIdx, key: u64, size: ByteSize, version: u32) {
        let evicted = self.caches[node as usize].insert(key, size, version);
        for e in evicted {
            self.remove_holder(e.key, node);
        }
        if self.caches[node as usize].peek(key).is_some() {
            let st = self.objs.entry(key).or_default();
            if let Err(pos) = st.holders.binary_search(&node) {
                st.holders.insert(pos, node);
                st.epoch += 1;
            }
        }
    }
}

impl Strategy for ClientHints {
    fn on_request(&mut self, ctx: &RequestCtx) -> AccessPath {
        // Consistency: version bump invalidates all copies.
        {
            let st = self.objs.entry(ctx.key).or_default();
            if ctx.version > st.version {
                st.version = ctx.version;
                st.epoch += 1;
                let stale = std::mem::take(&mut st.holders);
                for h in stale {
                    self.caches[h as usize].remove(ctx.key);
                }
            }
        }
        let (version, epoch, holders) = {
            let st = &self.objs[&ctx.key];
            (st.version, st.epoch, st.holders.clone())
        };

        // The client consults its own hints to decide where to go.
        let known = !holders.is_empty() && self.client_knows(ctx.client, ctx.key, epoch);
        let outcome = if known {
            let target = self
                .topo
                .nearest_holder(ctx.l1, holders.iter().copied())
                .expect("non-empty holders");
            if target == ctx.l1 {
                // The nearest copy is the client's own L1: a normal L1 hit.
                let got = self.caches[ctx.l1 as usize].get(ctx.key, version);
                debug_assert!(got.is_some());
                return AccessPath::L1Hit;
            }
            AccessPath::RemoteHit {
                distance: self.topo.distance(ctx.l1, target),
            }
        } else {
            if !holders.is_empty() {
                self.false_negatives += 1;
            }
            AccessPath::ServerFetch {
                false_positive: None,
            }
        };

        // The fetched copy lands in the client's L1 (the client's fetch
        // passes its proxy on the way in, which caches it — data still
        // lives at the leaves), and the object enters the client's own
        // hint history.
        self.history.insert(Self::history_key(ctx.client, ctx.key));
        self.insert_copy(ctx.l1, ctx.key, ctx.size, version);
        outcome
    }

    fn name(&self) -> &'static str {
        "client-hints"
    }

    fn finalize(&mut self, metrics: &mut crate::metrics::Metrics) {
        metrics.false_negatives = self.false_negatives;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_netmodel::RemoteDistance;
    use bh_simcore::SimTime;
    use bh_trace::WorkloadSpec;

    fn ctx(client: u32, key: u64, version: u32) -> RequestCtx {
        RequestCtx {
            time: SimTime::ZERO,
            l1: client / 256,
            client: ClientId(client),
            key,
            size: ByteSize::from_kb(10),
            version,
        }
    }

    fn topo() -> Topology {
        Topology::from_spec(&WorkloadSpec::small())
    }

    #[test]
    fn perfect_hints_behave_like_oracle() {
        let mut s = ClientHints::new(topo(), ClientHintConfig::default());
        assert_eq!(
            s.on_request(&ctx(0, 1, 0)),
            AccessPath::ServerFetch {
                false_positive: None
            }
        );
        assert_eq!(
            s.on_request(&ctx(1, 1, 0)),
            AccessPath::L1Hit,
            "same L1 group"
        );
        assert_eq!(
            s.on_request(&ctx(256, 1, 0)),
            AccessPath::RemoteHit {
                distance: RemoteDistance::SameL2
            }
        );
        assert_eq!(
            s.on_request(&ctx(768, 1, 0)),
            AccessPath::RemoteHit {
                distance: RemoteDistance::SameL3
            }
        );
        assert_eq!(s.false_negatives(), 0);
    }

    #[test]
    fn total_false_negatives_send_everything_to_server() {
        let mut s = ClientHints::new(
            topo(),
            ClientHintConfig {
                false_negative_rate: 1.0,
                ..ClientHintConfig::default()
            },
        );
        s.on_request(&ctx(0, 1, 0));
        // Copy exists at L1 0, but the client never knows.
        assert_eq!(
            s.on_request(&ctx(1, 1, 0)),
            AccessPath::ServerFetch {
                false_positive: None
            }
        );
        assert_eq!(s.false_negatives(), 1);
    }

    #[test]
    fn false_negative_rate_is_respected_statistically() {
        let mut s = ClientHints::new(
            topo(),
            ClientHintConfig {
                false_negative_rate: 0.3,
                ..ClientHintConfig::default()
            },
        );
        // Seed one object per key at L1 group 0, probe from group 1 clients.
        let mut fns = 0u64;
        let n = 20_000u64;
        for k in 0..n {
            s.on_request(&ctx(0, k, 0));
            let before = s.false_negatives();
            s.on_request(&ctx(300, k, 0));
            fns += s.false_negatives() - before;
        }
        let rate = fns as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed fn rate {rate}");
    }

    #[test]
    fn version_bump_rerolls_knowledge_and_invalidates() {
        let mut s = ClientHints::new(topo(), ClientHintConfig::default());
        s.on_request(&ctx(0, 1, 0));
        s.on_request(&ctx(300, 1, 0));
        assert_eq!(
            s.on_request(&ctx(600, 1, 3)),
            AccessPath::ServerFetch {
                false_positive: None
            }
        );
        // Only the fetcher's L1 holds the new version now.
        assert_eq!(
            s.on_request(&ctx(0, 1, 3)),
            AccessPath::RemoteHit {
                distance: RemoteDistance::SameL3
            }
        );
    }

    #[test]
    fn own_history_is_always_known() {
        let mut s = ClientHints::new(
            topo(),
            ClientHintConfig {
                false_negative_rate: 1.0,
                ..ClientHintConfig::default()
            },
        );
        s.on_request(&ctx(700, 9, 0)); // client 700 (group 2) fetches
                                       // Another client never learns of it…
        assert_eq!(
            s.on_request(&ctx(0, 9, 0)),
            AccessPath::ServerFetch {
                false_positive: None
            }
        );
        // …but client 700 finds its own L1 copy through its own history.
        assert_eq!(s.on_request(&ctx(700, 9, 0)), AccessPath::L1Hit);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut s = ClientHints::new(
                topo(),
                ClientHintConfig {
                    false_negative_rate: 0.4,
                    ..ClientHintConfig::default()
                },
            );
            let mut outcomes = Vec::new();
            for k in 0..500u64 {
                outcomes.push(s.on_request(&ctx((k % 1024) as u32, k % 50, 0)));
            }
            outcomes
        };
        assert_eq!(run(), run());
    }
}
