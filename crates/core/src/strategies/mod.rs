//! The cache-organization strategies under evaluation.

mod client_hints;
mod directory;
mod hierarchy;
mod hint;
mod multicast;

pub use client_hints::{ClientHintConfig, ClientHints};
pub use directory::CentralDirectory;
pub use hierarchy::DataHierarchy;
pub use hint::{HintConfig, HintHierarchy};
pub use multicast::{IcpMulticast, MULTICAST_SCOPE};

use crate::metrics::Metrics;
use crate::outcome::AccessPath;
use crate::push::{PushFraction, PushPolicy};
use crate::space::SpaceConfig;
use crate::topology::{NodeIdx, Topology};
use bh_simcore::{ByteSize, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One cacheable request, as a strategy sees it.
#[derive(Debug, Clone, Copy)]
pub struct RequestCtx {
    /// Arrival time.
    pub time: SimTime,
    /// The requesting client (client-level hint stores key on this).
    pub client: bh_trace::ClientId,
    /// The L1 node serving the requesting client.
    pub l1: NodeIdx,
    /// The object's 64-bit key ([`bh_trace::ObjectId::key`]).
    pub key: u64,
    /// Object size.
    pub size: ByteSize,
    /// Current object version (bumps invalidate cached copies).
    pub version: u32,
}

/// A cache-organization strategy: consumes cacheable requests, evolves its
/// cache state, and reports the access path each request took.
pub trait Strategy {
    /// Handles one cacheable request.
    fn on_request(&mut self, ctx: &RequestCtx) -> AccessPath;

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Copies strategy-internal counters (hint-update load, push
    /// accounting, …) into the metrics at the end of a run.
    fn finalize(&mut self, metrics: &mut Metrics) {
        let _ = metrics;
    }

    /// Profile of the strategy's internal event queue, if it drives one
    /// (hint strategies schedule delayed hint deliveries). Feeds the
    /// bench observability surfaces; `None` for queueless strategies.
    fn queue_stats(&self) -> Option<bh_simcore::QueueStats> {
        None
    }
}

/// Selects and parameterizes a strategy (the rows of Figures 8 and 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Traditional three-level data hierarchy (Harvest/Squid baseline).
    DataHierarchy,
    /// CRISP-style centralized directory with cache-to-cache transfers.
    CentralDirectory,
    /// The paper's hint hierarchy, demand replication only.
    HintHierarchy,
    /// Hint hierarchy + update push.
    HintUpdatePush,
    /// Hint hierarchy + hierarchical push on miss.
    HintHierarchicalPush(PushFraction),
    /// Hint hierarchy priced under the ideal-push upper bound
    /// ([`AccessPath::idealized`]).
    HintIdealPush,
    /// ICP-style multicast queries to the L2 neighborhood (related-work
    /// baseline; §3.1.1's contrast case).
    IcpMulticast,
}

impl StrategyKind {
    /// All kinds compared in Figure 10, in the paper's bar order.
    pub const FIGURE10: [StrategyKind; 7] = [
        StrategyKind::DataHierarchy,
        StrategyKind::HintHierarchy,
        StrategyKind::HintUpdatePush,
        StrategyKind::HintHierarchicalPush(PushFraction::One),
        StrategyKind::HintHierarchicalPush(PushFraction::Half),
        StrategyKind::HintHierarchicalPush(PushFraction::All),
        StrategyKind::HintIdealPush,
    ];

    /// Whether outcomes should be transformed by [`AccessPath::idealized`].
    pub fn idealized(self) -> bool {
        matches!(self, StrategyKind::HintIdealPush)
    }

    /// Human-readable label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::DataHierarchy => "Hierarchy",
            StrategyKind::CentralDirectory => "Directory",
            StrategyKind::HintHierarchy => "Hints",
            StrategyKind::IcpMulticast => "ICP",
            StrategyKind::HintUpdatePush => "Update Push",
            StrategyKind::HintHierarchicalPush(PushFraction::One) => "Push-1",
            StrategyKind::HintHierarchicalPush(PushFraction::Half) => "Push-half",
            StrategyKind::HintHierarchicalPush(PushFraction::All) => "Push-all",
            StrategyKind::HintIdealPush => "Push-ideal",
        }
    }

    /// Builds the strategy for `topo` under `space`, deterministic in `seed`.
    pub fn build(
        self,
        topo: Topology,
        space: &SpaceConfig,
        hint_delay: SimDuration,
        seed: u64,
    ) -> Box<dyn Strategy> {
        match self {
            StrategyKind::DataHierarchy => {
                Box::new(DataHierarchy::new(topo, space.hierarchy_node_capacity))
            }
            StrategyKind::CentralDirectory => {
                Box::new(CentralDirectory::new(topo, space.hierarchy_node_capacity))
            }
            StrategyKind::IcpMulticast => {
                Box::new(IcpMulticast::new(topo, space.hierarchy_node_capacity))
            }
            StrategyKind::HintHierarchy | StrategyKind::HintIdealPush => {
                Box::new(HintHierarchy::new(
                    topo,
                    HintConfig {
                        data_capacity: space.hint_node_capacity,
                        store_capacity: space.hint_store_capacity,
                        delay: hint_delay,
                        push: PushPolicy::None,
                    },
                    seed,
                ))
            }
            StrategyKind::HintUpdatePush => Box::new(HintHierarchy::new(
                topo,
                HintConfig {
                    data_capacity: space.hint_node_capacity,
                    store_capacity: space.hint_store_capacity,
                    delay: hint_delay,
                    push: PushPolicy::Update,
                },
                seed,
            )),
            StrategyKind::HintHierarchicalPush(fr) => Box::new(HintHierarchy::new(
                topo,
                HintConfig {
                    data_capacity: space.hint_node_capacity,
                    store_capacity: space.hint_store_capacity,
                    delay: hint_delay,
                    push: PushPolicy::Hierarchical(fr),
                },
                seed,
            )),
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_trace::WorkloadSpec;

    #[test]
    fn labels_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for k in StrategyKind::FIGURE10 {
            assert!(seen.insert(k.label()), "duplicate label {}", k.label());
        }
    }

    #[test]
    fn only_ideal_is_idealized() {
        assert!(StrategyKind::HintIdealPush.idealized());
        assert!(!StrategyKind::HintHierarchy.idealized());
        assert!(!StrategyKind::DataHierarchy.idealized());
    }

    #[test]
    fn build_constructs_every_kind() {
        let topo = Topology::from_spec(&WorkloadSpec::small());
        let space = SpaceConfig::infinite();
        for kind in [
            StrategyKind::DataHierarchy,
            StrategyKind::CentralDirectory,
            StrategyKind::IcpMulticast,
            StrategyKind::HintHierarchy,
            StrategyKind::HintUpdatePush,
            StrategyKind::HintHierarchicalPush(PushFraction::Half),
            StrategyKind::HintIdealPush,
        ] {
            let s = kind.build(topo.clone(), &space, SimDuration::ZERO, 1);
            assert!(!s.name().is_empty());
        }
    }
}
