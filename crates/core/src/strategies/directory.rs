//! CRISP-style centralized directory baseline (§3, related designs).
//!
//! Data lives only at the L1 proxies. A single, centralized directory maps
//! every object to the set of caches holding it; an L1 miss costs a
//! synchronous lookup round trip to the (far-away) directory before the
//! request can proceed to a peer or the server. Every copy added or
//! dropped anywhere sends an update to the directory — the load Table 5
//! compares against the filtering hierarchy.

use super::{RequestCtx, Strategy};
use crate::metrics::Metrics;
use crate::outcome::AccessPath;
use crate::topology::{NodeIdx, Topology};
use bh_cache::LruCache;
use bh_simcore::ByteSize;
use std::collections::HashMap;

#[derive(Debug, Default)]
struct DirEntry {
    version: u32,
    holders: Vec<NodeIdx>, // sorted, small
}

/// The centralized-directory strategy.
#[derive(Debug)]
pub struct CentralDirectory {
    topo: Topology,
    caches: Vec<LruCache>,
    directory: HashMap<u64, DirEntry>,
    updates: u64,
}

impl CentralDirectory {
    /// Builds the system with `node_capacity` bytes per L1.
    pub fn new(topo: Topology, node_capacity: ByteSize) -> Self {
        CentralDirectory {
            caches: (0..topo.l1_count())
                .map(|_| LruCache::new(node_capacity))
                .collect(),
            directory: HashMap::new(),
            updates: 0,
            topo,
        }
    }

    /// Updates the directory received so far (each add or drop is one).
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    fn add_holder(&mut self, key: u64, node: NodeIdx) {
        let e = self.directory.entry(key).or_default();
        if let Err(pos) = e.holders.binary_search(&node) {
            e.holders.insert(pos, node);
            self.updates += 1;
        }
    }

    fn drop_holder(&mut self, key: u64, node: NodeIdx) {
        if let Some(e) = self.directory.get_mut(&key) {
            if let Ok(pos) = e.holders.binary_search(&node) {
                e.holders.remove(pos);
                self.updates += 1;
            }
        }
    }

    fn insert_copy(&mut self, node: NodeIdx, key: u64, size: ByteSize, version: u32) {
        let evicted = self.caches[node as usize].insert(key, size, version);
        for e in evicted {
            self.drop_holder(e.key, node);
        }
        if self.caches[node as usize].peek(key).is_some() {
            self.add_holder(key, node);
        }
    }
}

impl Strategy for CentralDirectory {
    fn on_request(&mut self, ctx: &RequestCtx) -> AccessPath {
        let node = ctx.l1;
        // Version bump: the directory (which sees all consistency traffic)
        // invalidates every copy.
        let stale_holders: Vec<NodeIdx> = match self.directory.get_mut(&ctx.key) {
            Some(e) if ctx.version > e.version => {
                e.version = ctx.version;
                std::mem::take(&mut e.holders)
            }
            Some(_) => Vec::new(),
            None => {
                self.directory.insert(
                    ctx.key,
                    DirEntry {
                        version: ctx.version,
                        holders: Vec::new(),
                    },
                );
                Vec::new()
            }
        };
        for h in stale_holders {
            self.caches[h as usize].remove(ctx.key);
            self.updates += 1;
        }

        if self.caches[node as usize]
            .get(ctx.key, ctx.version)
            .is_some()
        {
            return AccessPath::L1Hit;
        }
        // The local copy may have just been invalidated by the get().
        if self.caches[node as usize].peek(ctx.key).is_none() {
            self.drop_holder(ctx.key, node);
        }

        // Synchronous directory lookup: pick the nearest fresh holder.
        let holders = self
            .directory
            .get(&ctx.key)
            .map(|e| {
                e.holders
                    .iter()
                    .copied()
                    .filter(|&h| h != node)
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default();
        let outcome = match self.topo.nearest_holder(node, holders) {
            Some(peer) => {
                debug_assert!(self.caches[peer as usize].contains_fresh(ctx.key, ctx.version));
                AccessPath::DirectoryRemoteHit {
                    distance: self.topo.distance(node, peer),
                }
            }
            None => AccessPath::DirectoryServerFetch,
        };
        self.insert_copy(node, ctx.key, ctx.size, ctx.version);
        outcome
    }

    fn name(&self) -> &'static str {
        "central-directory"
    }

    fn finalize(&mut self, metrics: &mut Metrics) {
        metrics.directory_updates = self.updates;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_netmodel::RemoteDistance;
    use bh_simcore::SimTime;
    use bh_trace::WorkloadSpec;

    fn ctx(l1: u32, key: u64, version: u32) -> RequestCtx {
        RequestCtx {
            time: SimTime::ZERO,
            client: bh_trace::ClientId(l1 * 256),
            l1,
            key,
            size: ByteSize::from_kb(10),
            version,
        }
    }

    fn system() -> CentralDirectory {
        CentralDirectory::new(Topology::from_spec(&WorkloadSpec::small()), ByteSize::MAX)
    }

    #[test]
    fn miss_then_remote_hits() {
        let mut d = system();
        assert_eq!(
            d.on_request(&ctx(0, 9, 0)),
            AccessPath::DirectoryServerFetch
        );
        assert_eq!(d.on_request(&ctx(0, 9, 0)), AccessPath::L1Hit);
        assert_eq!(
            d.on_request(&ctx(1, 9, 0)),
            AccessPath::DirectoryRemoteHit {
                distance: RemoteDistance::SameL2
            }
        );
        // Holders are nodes 0 and 1 (L2 group 0); node 3 is in group 1.
        assert_eq!(
            d.on_request(&ctx(3, 9, 0)),
            AccessPath::DirectoryRemoteHit {
                distance: RemoteDistance::SameL3
            }
        );
    }

    #[test]
    fn nearest_copy_preferred() {
        let mut d = system();
        d.on_request(&ctx(0, 5, 0)); // server fetch, node 0 holds
        d.on_request(&ctx(3, 5, 0)); // L3-distance remote hit, node 3 holds
                                     // Node 2 shares L2 with node 3 → SameL2 now available.
        assert_eq!(
            d.on_request(&ctx(2, 5, 0)),
            AccessPath::DirectoryRemoteHit {
                distance: RemoteDistance::SameL2
            }
        );
    }

    #[test]
    fn version_bump_invalidates_and_counts_updates() {
        let mut d = system();
        d.on_request(&ctx(0, 5, 0));
        let before = d.update_count();
        assert_eq!(
            d.on_request(&ctx(1, 5, 2)),
            AccessPath::DirectoryServerFetch
        );
        assert!(
            d.update_count() > before,
            "invalidation must notify the directory"
        );
    }

    #[test]
    fn updates_counted_for_adds_and_evictions() {
        let topo = Topology::from_spec(&WorkloadSpec::small());
        let mut d = CentralDirectory::new(topo, ByteSize::from_kb(20));
        d.on_request(&ctx(0, 1, 0));
        d.on_request(&ctx(0, 2, 0));
        let adds_only = d.update_count();
        assert_eq!(adds_only, 2);
        d.on_request(&ctx(0, 3, 0)); // evicts key 1: one add + one drop
        assert_eq!(d.update_count(), 4);
    }

    #[test]
    fn finalize_exports_counter() {
        let mut d = system();
        d.on_request(&ctx(0, 1, 0));
        let mut m = Metrics::new(&[]);
        d.finalize(&mut m);
        assert_eq!(m.directory_updates, 1);
    }
}
