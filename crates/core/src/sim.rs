//! The trace-driven simulation driver.
//!
//! [`Simulator::run`] streams a workload through a strategy and prices each
//! request's [`AccessPath`] under every supplied cost model at once — the
//! outcome stream is model-independent, so one pass yields the Testbed /
//! Min / Max groups of Figure 8 together.
//!
//! Following §2.2.1/§2.2.2: the first part of the trace warms the caches
//! without being measured, and uncachable/error requests are excluded from
//! hit-rate and response-time statistics (they are counted, but they never
//! touch cache state).

use crate::metrics::Metrics;

use crate::space::SpaceConfig;
use crate::strategies::{RequestCtx, Strategy, StrategyKind};
use crate::topology::Topology;
use bh_netmodel::CostModel;
use bh_simcore::SimDuration;
use bh_trace::{MaterializedTrace, TraceCache, TraceRecord, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Simulation parameters independent of the strategy.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Disk-space regime.
    pub space: SpaceConfig,
    /// Hint-propagation delay (hint strategies only; Figure 6).
    pub hint_delay: SimDuration,
    /// Fraction of requests used to warm caches before measuring
    /// (the paper uses the first 2 of 21 days ≈ 10%).
    pub warmup_fraction: f64,
}

impl SimConfig {
    /// Infinite disk everywhere (Figure 8a).
    pub fn infinite(_spec: &WorkloadSpec) -> Self {
        SimConfig {
            space: SpaceConfig::infinite(),
            hint_delay: SimDuration::ZERO,
            warmup_fraction: 0.10,
        }
    }

    /// The space-constrained regime (Figure 8b), scaled to the workload so
    /// eviction pressure matches a full-size run.
    pub fn constrained(spec: &WorkloadSpec) -> Self {
        SimConfig {
            space: SpaceConfig::constrained_scaled(spec),
            hint_delay: SimDuration::ZERO,
            warmup_fraction: 0.10,
        }
    }

    /// Overrides the hint-propagation delay.
    pub fn with_hint_delay(mut self, delay: SimDuration) -> Self {
        self.hint_delay = delay;
        self
    }

    /// Overrides the warm-up fraction.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not in `[0, 1)`.
    pub fn with_warmup(mut self, f: f64) -> Self {
        assert!((0.0..1.0).contains(&f), "warmup fraction {f} out of [0,1)");
        self.warmup_fraction = f;
        self
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Strategy label (Figure legend name).
    pub strategy: String,
    /// Workload name.
    pub workload: String,
    /// Collected metrics.
    pub metrics: Metrics,
}

impl SimReport {
    /// Mean response time under the model named `name`, in ms.
    pub fn mean_response_ms(&self, name: &str) -> Option<f64> {
        self.metrics.mean_response_ms(name)
    }
}

/// Drives strategies over workloads. Stateless apart from its config, so
/// one simulator can run many configurations.
#[derive(Debug, Clone, Copy)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator with the given config.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs `kind` over the workload, pricing under all `models`.
    ///
    /// The trace is obtained through the process-wide [`TraceCache`], so
    /// repeated runs over the same `(spec, seed)` — every multi-strategy
    /// figure — generate it only once.
    pub fn run(
        &self,
        spec: &WorkloadSpec,
        seed: u64,
        kind: StrategyKind,
        models: &[&dyn CostModel],
    ) -> SimReport {
        self.run_trace(&TraceCache::get(spec, seed), kind, models)
    }

    /// Runs `kind` over an already-materialized trace arena.
    pub fn run_trace(
        &self,
        trace: &MaterializedTrace,
        kind: StrategyKind,
        models: &[&dyn CostModel],
    ) -> SimReport {
        let topo = Topology::from_spec(trace.spec());
        let mut strategy = kind.build(
            topo.clone(),
            &self.config.space,
            self.config.hint_delay,
            trace.seed(),
        );
        let report = self.run_with_trace(trace, strategy.as_mut(), models, kind.idealized());
        SimReport {
            strategy: kind.label().to_string(),
            ..report
        }
    }

    /// Runs a caller-constructed strategy (for custom configurations, e.g.
    /// hint-size sweeps). Uses the process-wide [`TraceCache`].
    pub fn run_with(
        &self,
        spec: &WorkloadSpec,
        seed: u64,
        strategy: &mut dyn Strategy,
        models: &[&dyn CostModel],
        idealize: bool,
    ) -> SimReport {
        self.run_with_trace(&TraceCache::get(spec, seed), strategy, models, idealize)
    }

    /// [`Simulator::run_with`] over an already-materialized trace arena —
    /// the replay loop every other entry point funnels into.
    pub fn run_with_trace(
        &self,
        trace: &MaterializedTrace,
        strategy: &mut dyn Strategy,
        models: &[&dyn CostModel],
        idealize: bool,
    ) -> SimReport {
        let spec = trace.spec();
        let topo = Topology::from_spec(spec);
        let names: Vec<&str> = models.iter().map(|m| m.name()).collect();
        let mut metrics = Metrics::new(&names);
        let warmup_until = (spec.requests as f64 * self.config.warmup_fraction) as u64;

        for (i, record) in trace.iter().enumerate() {
            let measured = i as u64 >= warmup_until;
            self.step(
                &topo,
                spec,
                strategy,
                &record,
                measured,
                models,
                idealize,
                &mut metrics,
            );
        }
        strategy.finalize(&mut metrics);
        SimReport {
            strategy: strategy.name().to_string(),
            workload: spec.name.to_string(),
            metrics,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        topo: &Topology,
        spec: &WorkloadSpec,
        strategy: &mut dyn Strategy,
        record: &TraceRecord,
        measured: bool,
        models: &[&dyn CostModel],
        idealize: bool,
        metrics: &mut Metrics,
    ) {
        let _ = spec;
        if !measured {
            metrics.warmup_skipped += 1;
        }
        if !record.is_cacheable() {
            // Uncachable and error requests bypass the caches entirely and
            // are excluded from the measured statistics (§2.2.2).
            if measured {
                metrics.requests += 1;
                match record.class {
                    bh_trace::RequestClass::Uncachable => metrics.uncachable += 1,
                    bh_trace::RequestClass::Error => metrics.errors += 1,
                    bh_trace::RequestClass::Cacheable => unreachable!(),
                }
            }
            return;
        }
        let ctx = RequestCtx {
            time: record.time,
            client: record.client,
            l1: topo.l1_of(record.client),
            key: record.object.key(),
            size: record.size,
            version: record.version,
        };
        let mut path = strategy.on_request(&ctx);
        if idealize {
            path = path.idealized();
        }
        if measured {
            metrics.record(path, record.size, record.time);
            for (idx, model) in models.iter().enumerate() {
                metrics.record_response(idx, path.price(*model, record.size).as_millis_f64());
            }
        }
    }
}

/// Convenience: run every kind in `kinds` over the same workload/config.
/// The trace is materialized once (via the [`TraceCache`]) and replayed per
/// strategy.
pub fn run_matrix(
    config: SimConfig,
    spec: &WorkloadSpec,
    seed: u64,
    kinds: &[StrategyKind],
    models: &[&dyn CostModel],
) -> Vec<SimReport> {
    run_matrix_trace(config, &TraceCache::get(spec, seed), kinds, models)
}

/// [`run_matrix`] over an already-materialized trace arena.
pub fn run_matrix_trace(
    config: SimConfig,
    trace: &MaterializedTrace,
    kinds: &[StrategyKind],
    models: &[&dyn CostModel],
) -> Vec<SimReport> {
    let sim = Simulator::new(config);
    kinds
        .iter()
        .map(|&k| sim.run_trace(trace, k, models))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_netmodel::{RousskovModel, TestbedModel};

    fn spec() -> WorkloadSpec {
        WorkloadSpec::small().with_requests(6_000)
    }

    fn models() -> (TestbedModel, RousskovModel, RousskovModel) {
        (
            TestbedModel::new(),
            RousskovModel::min(),
            RousskovModel::max(),
        )
    }

    #[test]
    fn runs_every_strategy_and_prices_all_models() {
        let (tb, min, max) = models();
        let models: Vec<&dyn CostModel> = vec![&tb, &min, &max];
        let sim = Simulator::new(SimConfig::infinite(&spec()));
        for kind in [
            StrategyKind::DataHierarchy,
            StrategyKind::CentralDirectory,
            StrategyKind::HintHierarchy,
            StrategyKind::HintIdealPush,
        ] {
            let r = sim.run(&spec(), 11, kind, &models);
            assert!(r.metrics.cacheable > 0, "{kind}");
            for name in ["Testbed", "Min", "Max"] {
                let m = r.mean_response_ms(name).expect("model present");
                assert!(m > 0.0, "{kind} {name} mean {m}");
            }
        }
    }

    #[test]
    fn hints_beat_hierarchy_on_response_time() {
        // The paper's headline: 1.3–2.3× response-time improvement.
        let (tb, min, max) = models();
        let models: Vec<&dyn CostModel> = vec![&tb, &min, &max];
        let sim = Simulator::new(SimConfig::infinite(&spec()));
        let hier = sim.run(&spec(), 11, StrategyKind::DataHierarchy, &models);
        let hint = sim.run(&spec(), 11, StrategyKind::HintHierarchy, &models);
        for name in ["Testbed", "Min", "Max"] {
            let h = hier.mean_response_ms(name).unwrap();
            let s = hint.mean_response_ms(name).unwrap();
            assert!(
                s < h,
                "hints ({s} ms) should beat the hierarchy ({h} ms) under {name}"
            );
        }
    }

    #[test]
    fn ideal_push_is_a_lower_bound_for_hint_runs() {
        let (tb, ..) = models();
        let models: Vec<&dyn CostModel> = vec![&tb];
        let sim = Simulator::new(SimConfig::infinite(&spec()));
        let hint = sim.run(&spec(), 11, StrategyKind::HintHierarchy, &models);
        let ideal = sim.run(&spec(), 11, StrategyKind::HintIdealPush, &models);
        assert!(
            ideal.mean_response_ms("Testbed").unwrap() <= hint.mean_response_ms("Testbed").unwrap()
        );
        // Identical hit/miss structure, only placement differs.
        assert_eq!(ideal.metrics.hits(), hint.metrics.hits());
        assert_eq!(ideal.metrics.server_fetches, hint.metrics.server_fetches);
        assert!(ideal.metrics.l1_hits >= hint.metrics.l1_hits);
        assert_eq!(
            ideal.metrics.remote_hits_l2 + ideal.metrics.remote_hits_l3,
            0
        );
    }

    #[test]
    fn global_hit_rates_match_across_sharing_strategies() {
        // Hints improve *where* hits happen, not the global hit rate
        // (§3.3): with infinite caches the hierarchy and hint system see the
        // same hits.
        let (tb, ..) = models();
        let models: Vec<&dyn CostModel> = vec![&tb];
        let sim = Simulator::new(SimConfig::infinite(&spec()));
        let hier = sim.run(&spec(), 11, StrategyKind::DataHierarchy, &models);
        let hint = sim.run(&spec(), 11, StrategyKind::HintHierarchy, &models);
        let hr_hier = hier.metrics.hit_ratio();
        let hr_hint = hint.metrics.hit_ratio();
        assert!(
            (hr_hier - hr_hint).abs() < 0.01,
            "hit ratios should match: hierarchy {hr_hier} vs hints {hr_hint}"
        );
    }

    #[test]
    fn warmup_requests_not_measured() {
        let (tb, ..) = models();
        let models: Vec<&dyn CostModel> = vec![&tb];
        let sim = Simulator::new(SimConfig::infinite(&spec()).with_warmup(0.5));
        let r = sim.run(&spec(), 11, StrategyKind::HintHierarchy, &models);
        assert_eq!(r.metrics.warmup_skipped, 3_000);
        assert!(r.metrics.requests <= 3_000);
    }

    #[test]
    fn run_matrix_covers_kinds() {
        let (tb, ..) = models();
        let models: Vec<&dyn CostModel> = vec![&tb];
        let reports = run_matrix(
            SimConfig::infinite(&spec()),
            &spec(),
            3,
            &[StrategyKind::DataHierarchy, StrategyKind::HintHierarchy],
            &models,
        );
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].strategy, "Hierarchy");
        assert_eq!(reports[1].strategy, "Hints");
    }

    #[test]
    fn outcome_conservation_across_strategies() {
        // Every measured cacheable request is exactly one of: a hit
        // (local/remote/hierarchy) or a server fetch.
        let (tb, ..) = models();
        let models: Vec<&dyn CostModel> = vec![&tb];
        for kind in [
            StrategyKind::DataHierarchy,
            StrategyKind::CentralDirectory,
            StrategyKind::IcpMulticast,
            StrategyKind::HintHierarchy,
            StrategyKind::HintHierarchicalPush(bh_core_push_all()),
        ] {
            for (cfg_name, cfg) in [
                ("infinite", SimConfig::infinite(&spec())),
                ("constrained", SimConfig::constrained(&spec())),
            ] {
                let r = Simulator::new(cfg).run(&spec(), 21, kind, &models);
                let m = &r.metrics;
                assert_eq!(
                    m.hits() + m.server_fetches,
                    m.cacheable,
                    "conservation violated for {kind} ({cfg_name}): {m:?}"
                );
                assert_eq!(
                    m.requests,
                    m.cacheable + m.uncachable + m.errors,
                    "class partition violated for {kind} ({cfg_name})"
                );
            }
        }
    }

    fn bh_core_push_all() -> crate::push::PushFraction {
        crate::push::PushFraction::All
    }

    #[test]
    fn mean_response_is_mix_of_component_costs() {
        // The mean must lie between the cheapest and the dearest path price.
        let (tb, ..) = models();
        let models: Vec<&dyn CostModel> = vec![&tb];
        let sim = Simulator::new(SimConfig::infinite(&spec()));
        let r = sim.run(&spec(), 4, StrategyKind::HintHierarchy, &models);
        let mean = r.mean_response_ms("Testbed").unwrap();
        let cheapest = tb
            .hierarchy_hit(
                bh_netmodel::Level::L1,
                bh_simcore::ByteSize::from_bytes(128),
            )
            .as_millis_f64();
        let dearest = tb
            .server_fetch(bh_simcore::ByteSize::from_mb(8))
            .as_millis_f64()
            + tb.false_positive_penalty(bh_netmodel::RemoteDistance::SameL3)
                .as_millis_f64();
        assert!(
            mean > cheapest && mean < dearest,
            "mean {mean} outside [{cheapest}, {dearest}]"
        );
    }

    #[test]
    fn constrained_space_hurts_hit_rate() {
        let (tb, ..) = models();
        let models: Vec<&dyn CostModel> = vec![&tb];
        let spec = spec();
        let inf = Simulator::new(SimConfig::infinite(&spec)).run(
            &spec,
            5,
            StrategyKind::HintHierarchy,
            &models,
        );
        let mut tight_cfg = SimConfig::infinite(&spec);
        tight_cfg.space.hint_node_capacity = bh_simcore::ByteSize::from_mb(2);
        let tight = Simulator::new(tight_cfg).run(&spec, 5, StrategyKind::HintHierarchy, &models);
        assert!(tight.metrics.hit_ratio() <= inf.metrics.hit_ratio() + 1e-9);
    }
}
