//! Space configurations for the two evaluation regimes of Figure 8.

use bh_simcore::ByteSize;
use bh_trace::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// Disk-space allocation across the cache system.
///
/// The paper evaluates two regimes:
///
/// * **infinite** — every node has unlimited disk (Figure 8a);
/// * **space-constrained** — each node of the traditional data hierarchy
///   gets 5 GB for objects, while each hint-system L1 gets 4.5 GB for data
///   plus 500 MB for hints at every L1/L2/L3 node — *deliberately giving
///   the standard hierarchy more space* (Figure 8b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceConfig {
    /// Per-L1 data-cache capacity for hierarchy/directory strategies.
    pub hierarchy_node_capacity: ByteSize,
    /// Per-L1 data-cache capacity for the hint strategy.
    pub hint_node_capacity: ByteSize,
    /// Per-node hint-store capacity ([`ByteSize::MAX`] = unbounded).
    pub hint_store_capacity: ByteSize,
}

impl SpaceConfig {
    /// Every cache infinite, hint stores unbounded (Figure 8a).
    pub fn infinite() -> Self {
        SpaceConfig {
            hierarchy_node_capacity: ByteSize::MAX,
            hint_node_capacity: ByteSize::MAX,
            hint_store_capacity: ByteSize::MAX,
        }
    }

    /// The paper's space-constrained arrangement (Figure 8b): 5 GB per
    /// hierarchy node; 4.5 GB data + 500 MB hints per hint-system node.
    pub fn constrained() -> Self {
        SpaceConfig {
            hierarchy_node_capacity: ByteSize::from_gb(5),
            hint_node_capacity: ByteSize::from_mb(4608), // 4.5 GiB
            hint_store_capacity: ByteSize::from_mb(512), // the paper's "500 MB"
        }
    }

    /// A constrained configuration scaled to a reduced workload, keeping
    /// capacity proportional to the traffic so eviction pressure (and thus
    /// capacity-miss behaviour) matches a full-scale run.
    pub fn constrained_scaled(spec: &WorkloadSpec) -> Self {
        let full = WorkloadSpec::dec().requests as f64;
        let factor = (spec.requests as f64 / full).min(1.0);
        let scale = |b: ByteSize| {
            ByteSize::from_bytes(((b.as_bytes() as f64 * factor) as u64).max(1 << 20))
        };
        let c = Self::constrained();
        SpaceConfig {
            hierarchy_node_capacity: scale(c.hierarchy_node_capacity),
            hint_node_capacity: scale(c.hint_node_capacity),
            hint_store_capacity: scale(c.hint_store_capacity),
        }
    }

    /// Whether any component is bounded.
    pub fn is_constrained(&self) -> bool {
        !self.hierarchy_node_capacity.is_unlimited()
            || !self.hint_node_capacity.is_unlimited()
            || !self.hint_store_capacity.is_unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_is_unbounded() {
        let s = SpaceConfig::infinite();
        assert!(!s.is_constrained());
        assert!(s.hierarchy_node_capacity.is_unlimited());
    }

    #[test]
    fn constrained_matches_paper_figures() {
        let s = SpaceConfig::constrained();
        assert!(s.is_constrained());
        assert_eq!(s.hierarchy_node_capacity, ByteSize::from_gb(5));
        // 4.5 GB + 0.5 GB = the hierarchy's 5 GB: the hint system never gets
        // more total space than the baseline.
        assert_eq!(
            s.hint_node_capacity + s.hint_store_capacity,
            ByteSize::from_gb(5)
        );
    }

    #[test]
    fn scaled_config_shrinks_with_workload() {
        let tenth = WorkloadSpec::dec().scaled(0.1);
        let s = SpaceConfig::constrained_scaled(&tenth);
        let full = SpaceConfig::constrained();
        assert!(s.hierarchy_node_capacity < full.hierarchy_node_capacity);
        let ratio = s.hierarchy_node_capacity.as_bytes() as f64
            / full.hierarchy_node_capacity.as_bytes() as f64;
        assert!((ratio - 0.1).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn scaled_config_never_exceeds_full() {
        let s = SpaceConfig::constrained_scaled(&WorkloadSpec::dec());
        assert_eq!(
            s.hierarchy_node_capacity,
            SpaceConfig::constrained().hierarchy_node_capacity
        );
    }
}
