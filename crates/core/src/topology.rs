//! The default simulated topology (§2.2.3): 256 clients per L1 proxy,
//! 8 L1s per L2, one L3 root over everything.

use bh_netmodel::RemoteDistance;
use bh_trace::{ClientId, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Index of an L1 proxy cache node.
pub type NodeIdx = u32;

/// The cache-system topology: which L1 serves which client, and how far
/// apart two L1 nodes are in hierarchy terms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    l1_count: u32,
    l1s_per_l2: u32,
    clients_per_l1: u32,
    dynamic_client_ids: bool,
}

impl Topology {
    /// Builds the topology a workload spec implies.
    pub fn from_spec(spec: &WorkloadSpec) -> Self {
        Topology {
            l1_count: spec.l1_groups(),
            l1s_per_l2: spec.l1s_per_l2,
            clients_per_l1: spec.clients_per_l1,
            dynamic_client_ids: spec.dynamic_client_ids,
        }
    }

    /// Number of L1 proxies.
    pub fn l1_count(&self) -> u32 {
        self.l1_count
    }

    /// Number of L2 proxies.
    pub fn l2_count(&self) -> u32 {
        self.l1_count.div_ceil(self.l1s_per_l2)
    }

    /// L1s sharing one L2.
    pub fn l1s_per_l2(&self) -> u32 {
        self.l1s_per_l2
    }

    /// The L1 node serving `client`.
    pub fn l1_of(&self, client: ClientId) -> NodeIdx {
        if self.dynamic_client_ids {
            client.0 % self.l1_count
        } else {
            (client.0 / self.clients_per_l1).min(self.l1_count - 1)
        }
    }

    /// The L2 group an L1 node belongs to.
    pub fn l2_of(&self, l1: NodeIdx) -> u32 {
        l1 / self.l1s_per_l2
    }

    /// Hierarchy distance between two *different* L1 nodes.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (that is a local hit, not a remote fetch).
    pub fn distance(&self, a: NodeIdx, b: NodeIdx) -> RemoteDistance {
        assert_ne!(a, b, "distance between a node and itself");
        if self.l2_of(a) == self.l2_of(b) {
            RemoteDistance::SameL2
        } else {
            RemoteDistance::SameL3
        }
    }

    /// All L1 nodes in the same L2 group as `l1`, including `l1` itself.
    pub fn l2_siblings(&self, l1: NodeIdx) -> impl Iterator<Item = NodeIdx> + '_ {
        let group = self.l2_of(l1);
        let start = group * self.l1s_per_l2;
        let end = (start + self.l1s_per_l2).min(self.l1_count);
        start..end
    }

    /// Picks, among `holders`, the one nearest to `from` (self > same-L2 >
    /// same-L3; ties by lowest index). Returns `None` if `holders` is empty.
    pub fn nearest_holder(
        &self,
        from: NodeIdx,
        holders: impl IntoIterator<Item = NodeIdx>,
    ) -> Option<NodeIdx> {
        let mut best: Option<(u8, NodeIdx)> = None;
        for h in holders {
            let rank = if h == from {
                0
            } else if self.l2_of(h) == self.l2_of(from) {
                1
            } else {
                2
            };
            if best.is_none_or(|(r, n)| (rank, h) < (r, n)) {
                best = Some((rank, h));
            }
        }
        best.map(|(_, n)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_trace::WorkloadSpec;

    fn topo() -> Topology {
        Topology::from_spec(&WorkloadSpec::dec())
    }

    #[test]
    fn dec_topology_dimensions() {
        let t = topo();
        assert_eq!(t.l1_count(), 64);
        assert_eq!(t.l2_count(), 8);
        assert_eq!(t.l1s_per_l2(), 8);
    }

    #[test]
    fn client_mapping_blocks() {
        let t = topo();
        assert_eq!(t.l1_of(ClientId(0)), 0);
        assert_eq!(t.l1_of(ClientId(255)), 0);
        assert_eq!(t.l1_of(ClientId(256)), 1);
        assert_eq!(t.l1_of(ClientId(16_383)), 63);
    }

    #[test]
    fn dynamic_client_mapping_modular() {
        let t = Topology::from_spec(&WorkloadSpec::prodigy());
        let groups = t.l1_count();
        assert_eq!(t.l1_of(ClientId(5)), 5 % groups);
        assert_eq!(t.l1_of(ClientId(groups + 3)), 3);
    }

    #[test]
    fn distances() {
        let t = topo();
        assert_eq!(t.distance(0, 1), RemoteDistance::SameL2);
        assert_eq!(t.distance(0, 7), RemoteDistance::SameL2);
        assert_eq!(t.distance(0, 8), RemoteDistance::SameL3);
        assert_eq!(t.distance(63, 0), RemoteDistance::SameL3);
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn self_distance_panics() {
        topo().distance(3, 3);
    }

    #[test]
    fn siblings() {
        let t = topo();
        let sibs: Vec<u32> = t.l2_siblings(10).collect();
        assert_eq!(sibs, (8..16).collect::<Vec<_>>());
    }

    #[test]
    fn nearest_holder_prefers_self_then_l2() {
        let t = topo();
        assert_eq!(t.nearest_holder(0, [63, 9, 0]), Some(0));
        assert_eq!(t.nearest_holder(0, [63, 5]), Some(5));
        assert_eq!(t.nearest_holder(0, [63, 42]), Some(42));
        assert_eq!(t.nearest_holder(0, [63, 42, 17]), Some(17));
        assert_eq!(t.nearest_holder(0, std::iter::empty()), None);
        // Tie-break by lowest index within a class.
        assert_eq!(t.nearest_holder(0, [7, 3]), Some(3));
    }

    #[test]
    fn ragged_last_l2_group() {
        let mut spec = WorkloadSpec::small();
        spec.clients = 256 * 5; // 5 L1s, l1s_per_l2 = 2 → groups of 2,2,1
        let t = Topology::from_spec(&spec);
        assert_eq!(t.l1_count(), 5);
        assert_eq!(t.l2_count(), 3);
        let sibs: Vec<u32> = t.l2_siblings(4).collect();
        assert_eq!(sibs, vec![4]);
    }
}
