//! Push-caching policies (§4).
//!
//! Push algorithms replicate data *before* it is requested, to convert hits
//! on distant caches into hits on nearby ones. The paper examines:
//!
//! * **update push** (§4.1.2) — when a communication miss re-fetches a
//!   modified object, push the new version to every cache that held the old
//!   version (they are the best predictor of future interest); pushed
//!   copies are *aged* (inserted at the cold end of the LRU) so repeatedly
//!   updated but unread objects drift out;
//! * **hierarchical push on miss** (§4.1.3) — when a cache fetches from a
//!   cousin whose least common ancestor is at level *k*, push the object to
//!   a configurable number of nodes in each level-(k−1) subtree under that
//!   ancestor (`push-1` / `push-half` / `push-all`);
//! * **ideal push** (§4.1.1) — the upper bound: every L2/L3-distance hit
//!   becomes an L1 hit, misses are unchanged, pushed copies consume no
//!   space. Implemented as an outcome transformation
//!   ([`crate::AccessPath::idealized`]).

use serde::{Deserialize, Serialize};

/// How many nodes per eligible subtree a hierarchical push targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PushFraction {
    /// One random node per eligible subtree (`push-1`).
    One,
    /// Half the nodes in each eligible subtree (`push-half`).
    Half,
    /// Every node in each eligible subtree (`push-all`).
    All,
}

impl PushFraction {
    /// Number of targets for a subtree of `subtree_size` nodes
    /// (always at least one for non-empty subtrees).
    pub fn targets(self, subtree_size: usize) -> usize {
        if subtree_size == 0 {
            return 0;
        }
        match self {
            PushFraction::One => 1,
            PushFraction::Half => subtree_size.div_ceil(2),
            PushFraction::All => subtree_size,
        }
    }
}

impl std::fmt::Display for PushFraction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PushFraction::One => "push-1",
            PushFraction::Half => "push-half",
            PushFraction::All => "push-all",
        };
        f.write_str(s)
    }
}

/// The push policy a hint hierarchy runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PushPolicy {
    /// Demand replication only.
    #[default]
    None,
    /// Update push (§4.1.2).
    Update,
    /// Hierarchical push on miss (§4.1.3).
    Hierarchical(PushFraction),
}

impl std::fmt::Display for PushPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushPolicy::None => f.write_str("no-push"),
            PushPolicy::Update => f.write_str("update-push"),
            PushPolicy::Hierarchical(fr) => write!(f, "{fr}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_targets() {
        assert_eq!(PushFraction::One.targets(8), 1);
        assert_eq!(PushFraction::Half.targets(8), 4);
        assert_eq!(PushFraction::Half.targets(7), 4);
        assert_eq!(PushFraction::All.targets(8), 8);
        // Single-node subtrees: every variant pushes to that node (the k=2
        // case of Figure 9, where level-1 subtrees are single caches).
        for f in [PushFraction::One, PushFraction::Half, PushFraction::All] {
            assert_eq!(f.targets(1), 1);
            assert_eq!(f.targets(0), 0);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(PushPolicy::None.to_string(), "no-push");
        assert_eq!(PushPolicy::Update.to_string(), "update-push");
        assert_eq!(
            PushPolicy::Hierarchical(PushFraction::Half).to_string(),
            "push-half"
        );
    }
}
