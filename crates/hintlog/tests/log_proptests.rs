//! Property tests for the durable hint log: replay after a crash at an
//! *arbitrary byte offset* recovers exactly a segment-aligned prefix of
//! the appended mutations, never panics, and applying that prefix to a
//! fresh [`bh_cache::HintCache`] matches an in-memory witness that saw
//! the same prefix — including when the state is split across a
//! compacted snapshot plus a log tail.

use bh_cache::HintCache;
use bh_hintlog::{HintLog, LogRecord};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// One hint mutation in witness form.
#[derive(Debug, Clone, Copy)]
enum Op {
    Add { key: u64, machine: u64 },
    Remove { key: u64 },
}

impl Op {
    fn record(self) -> LogRecord {
        match self {
            Op::Add { key, machine } => LogRecord::add(key, machine),
            Op::Remove { key } => LogRecord::remove(key),
        }
    }

    fn apply(self, cache: &mut HintCache) {
        match self {
            Op::Add { key, machine } => cache.insert(key, machine),
            Op::Remove { key } => {
                cache.remove(key);
            }
        }
    }
}

fn arb_op() -> BoxedStrategy<Op> {
    // Machine words mimic MachineId packing: low 16 bits zero, so the
    // op bit is free. Small key range forces add/remove interleaving on
    // the same keys.
    (any::<bool>(), 1u64..24, 1u64..6)
        .prop_map(|(add, key, m)| {
            if add {
                Op::Add {
                    key,
                    machine: m << 16,
                }
            } else {
                Op::Remove { key }
            }
        })
        .boxed()
}

/// A unique scratch directory per test case (proptest shrinks re-enter
/// the closure, so a per-process counter keeps cases isolated).
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("bh-hintlog-prop-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Applies `records` to a fresh unbounded cache and returns its sorted
/// entry list.
fn materialize(records: &[LogRecord]) -> Vec<(u64, u64)> {
    let mut cache = HintCache::unbounded();
    for r in records {
        if r.is_remove() {
            cache.remove(r.key);
        } else {
            cache.insert(r.key, r.machine());
        }
    }
    cache.entries()
}

/// Witness state after the first `n` ops.
fn witness_after(ops: &[Op], n: usize) -> Vec<(u64, u64)> {
    let mut cache = HintCache::unbounded();
    for op in &ops[..n] {
        op.apply(&mut cache);
    }
    cache.entries()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Crash at any byte offset of the log file: reopen never panics,
    /// recovers a batch-aligned prefix of the appended ops, and the
    /// recovered state equals the in-memory witness of that prefix.
    #[test]
    fn crash_at_any_offset_recovers_a_witness_prefix(
        ops in proptest::collection::vec(arb_op(), 1..120),
        batch in 1usize..7,
        cut in any::<u64>(),
    ) {
        let dir = scratch("crash");
        let mut batch_ends: Vec<usize> = vec![0];
        {
            let mut rec = HintLog::open(&dir).expect("open fresh");
            for chunk in ops.chunks(batch) {
                let records: Vec<LogRecord> = chunk.iter().map(|o| o.record()).collect();
                rec.log.append(&records).expect("append");
                batch_ends.push(batch_ends.last().expect("nonempty") + chunk.len());
            }
            rec.log.sync().expect("sync");
        }

        // Tear the file at an arbitrary byte offset — mid-header,
        // mid-record, anywhere.
        let path = dir.join("log.bh");
        let len = std::fs::metadata(&path).expect("stat").len();
        let cut = cut % (len + 1);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("open for truncate")
            .set_len(cut)
            .expect("truncate");

        let rec = HintLog::open(&dir).expect("reopen over torn log");
        // The recovered mutation count must sit exactly on a batch
        // boundary: segments are all-or-nothing.
        prop_assert!(
            batch_ends.contains(&rec.records.len()),
            "recovered {} ops, not a batch boundary of {:?}",
            rec.records.len(),
            batch_ends
        );
        // Everything recovered is a verbatim prefix of what was logged.
        let logged: Vec<LogRecord> = ops.iter().map(|o| o.record()).collect();
        prop_assert_eq!(&rec.records[..], &logged[..rec.records.len()]);
        // Replayed state ≡ in-memory witness of the same prefix.
        prop_assert_eq!(
            materialize(&rec.records),
            witness_after(&ops, rec.records.len())
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Snapshot + tail composition: compact mid-stream, keep appending,
    /// crash anywhere in the *tail*, reopen — the snapshot base plus the
    /// surviving tail must equal the witness at the recovered prefix.
    #[test]
    fn snapshot_plus_tail_composes_to_the_witness(
        ops in proptest::collection::vec(arb_op(), 2..120),
        split_frac in 0.0f64..1.0,
        cut in any::<u64>(),
    ) {
        let dir = scratch("snap");
        let split = 1 + ((ops.len() - 1) as f64 * split_frac) as usize;
        {
            let mut rec = HintLog::open(&dir).expect("open fresh");
            let base: Vec<LogRecord> = ops[..split].iter().map(|o| o.record()).collect();
            rec.log.append(&base).expect("append base");
            rec.log.sync().expect("sync base");
            rec.log
                .compact(&witness_after(&ops, split))
                .expect("compact");
            prop_assert_eq!(rec.log.log_bytes(), 0);
            for op in &ops[split..] {
                rec.log.append(&[op.record()]).expect("append tail");
            }
            rec.log.sync().expect("sync tail");
        }

        let path = dir.join("log.bh");
        let len = std::fs::metadata(&path).expect("stat").len();
        let cut = cut % (len + 1);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("open for truncate")
            .set_len(cut)
            .expect("truncate");

        let rec = HintLog::open(&dir).expect("reopen");
        prop_assert!(!rec.stats.corrupt_snapshot);
        // One op per tail segment, so the surviving tail length tells us
        // exactly which witness prefix we must match.
        let tail_survived = rec.stats.log_records;
        prop_assert!(tail_survived <= ops.len() - split);
        prop_assert_eq!(
            materialize(&rec.records),
            witness_after(&ops, split + tail_survived)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Arbitrary garbage bytes as the log file never panic open() and
    /// never yield records that were not written by this crate.
    #[test]
    fn garbage_log_never_panics(
        garbage in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let dir = scratch("garbage");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("log.bh"), &garbage).expect("write garbage");
        let rec = HintLog::open(&dir).expect("open over garbage");
        // Whatever survived CRC validation is structurally sane.
        let _ = materialize(&rec.records);
        std::fs::remove_dir_all(&dir).ok();
    }
}
