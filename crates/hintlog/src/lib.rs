//! Crash-safe persistent backend for the hint cache (§3.2).
//!
//! The hint table is soft state — the paper's contract is that a stale
//! hint costs one wasted probe, never a failed request — so losing it on
//! a crash is *correct* but expensive: the restarted node must
//! re-advertise the world over `Resync`. This crate makes warm restart
//! mean "open file, replay tail" instead:
//!
//! * `log.bh` — an append-only sequence of CRC-framed segments, each a
//!   batch of fixed-width 16-byte [`LogRecord`]s (8-byte key + 8-byte
//!   location word). Appends are buffered-write cheap; the caller
//!   batches [`HintLog::sync`] off the hot path (the node fsyncs at its
//!   flush cadence).
//! * `snapshot.bh` — a periodically compacted materialization of the
//!   live table, records **sorted by key**, CRC-covered, written
//!   tmp-then-rename so a crash never leaves a half snapshot in place.
//!
//! Replay is total: a torn or corrupt log tail is truncated at the last
//! good segment boundary (never a panic, never garbage records), and a
//! corrupt snapshot degrades to a cold start. Because a segment's CRC
//! covers its whole body, a torn final record can only lose the one
//! unsynced batch the crash interrupted — exactly the window the fsync
//! cadence budgets.
//!
//! The location word reuses the prototype's `MachineId` packing
//! (`ip << 32 | port << 16`): the low 16 bits are zero by construction,
//! which frees bit 0 as the remove flag so a mutation still fits the
//! paper's 16-byte record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Size of one log record on disk: 8-byte key + 8-byte location word.
pub const LOG_RECORD_BYTES: usize = 16;

/// Bit 0 of the location word: set = "remove this key", clear = "add".
/// Real machine words always have it clear (`MachineId` packs
/// `ip << 32 | port << 16`).
pub const OP_REMOVE: u64 = 1;

/// Snapshot file magic + format version.
const SNAP_MAGIC: [u8; 8] = *b"BHSNAP01";
/// Per-segment magic in the log file ("BHLG", little-endian).
const SEG_MAGIC: u32 = u32::from_le_bytes(*b"BHLG");
/// Segment header: magic + record count + body CRC, 4 bytes each.
const SEG_HEADER_BYTES: usize = 12;

const SNAPSHOT_FILE: &str = "snapshot.bh";
const LOG_FILE: &str = "log.bh";

/// One persisted hint mutation, fixed-width by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecord {
    /// 64-bit URL-hash key (never 0; 0 marks an empty hint slot).
    pub key: u64,
    /// Location word: machine id with [`OP_REMOVE`] in bit 0.
    pub location: u64,
}

impl LogRecord {
    /// An "insert hint" record. `machine`'s low bit must be clear (it is
    /// for every real `MachineId`).
    pub fn add(key: u64, machine: u64) -> LogRecord {
        debug_assert_eq!(machine & OP_REMOVE, 0, "machine word uses the op bit");
        LogRecord {
            key,
            location: machine,
        }
    }

    /// A "remove this key" record. Removal is unconditional by key: the
    /// node only logs a remove after its in-memory conditional remove
    /// already succeeded, so replay needs no compare-location step.
    pub fn remove(key: u64) -> LogRecord {
        LogRecord {
            key,
            location: OP_REMOVE,
        }
    }

    /// Whether this record removes its key.
    pub fn is_remove(&self) -> bool {
        self.location & OP_REMOVE != 0
    }

    /// The machine word with the op bit stripped (0 for removes).
    pub fn machine(&self) -> u64 {
        self.location & !OP_REMOVE
    }

    /// Serializes to the on-disk 16-byte layout (both words LE).
    pub fn to_bytes(self) -> [u8; LOG_RECORD_BYTES] {
        let mut out = [0u8; LOG_RECORD_BYTES];
        out[..8].copy_from_slice(&self.key.to_le_bytes());
        out[8..].copy_from_slice(&self.location.to_le_bytes());
        out
    }

    /// Deserializes from the on-disk layout.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than [`LOG_RECORD_BYTES`] (callers
    /// slice exact record frames out of CRC-validated segments).
    pub fn from_bytes(bytes: &[u8]) -> LogRecord {
        let mut key = [0u8; 8];
        key.copy_from_slice(&bytes[..8]);
        let mut location = [0u8; 8];
        location.copy_from_slice(&bytes[8..16]);
        LogRecord {
            key: u64::from_le_bytes(key),
            location: u64::from_le_bytes(location),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data` — the checksum framing every segment and the
/// snapshot body.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// What replay found on open: how much state came back and what had to
/// be discarded to get there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records recovered from the snapshot.
    pub snapshot_records: usize,
    /// Records recovered from the log tail.
    pub log_records: usize,
    /// Bytes truncated off the log's torn/corrupt tail.
    pub truncated_bytes: u64,
    /// True when a snapshot file existed but failed validation (magic,
    /// CRC, sortedness, or framing) and was ignored.
    pub corrupt_snapshot: bool,
}

/// The result of [`HintLog::open`]: the writable log plus everything
/// replay recovered, in apply order (snapshot first, then the tail).
#[derive(Debug)]
pub struct Recovered {
    /// The opened log, positioned for appends.
    pub log: HintLog,
    /// Recovered mutations in apply order.
    pub records: Vec<LogRecord>,
    /// Replay accounting.
    pub stats: ReplayStats,
}

/// The durable hint store: one directory holding `snapshot.bh` and
/// `log.bh`. See the [module docs](self) for the format.
#[derive(Debug)]
pub struct HintLog {
    dir: PathBuf,
    log: File,
    log_len: u64,
}

/// True when `records` are in nondecreasing key order — the snapshot
/// invariant the `fixed-width-records` lint pins on the write side and
/// replay re-checks on the read side.
fn records_sorted(records: &[LogRecord]) -> bool {
    records.windows(2).all(|w| w[0].key <= w[1].key)
}

/// Parses and validates a snapshot image. Any framing, CRC, order, or
/// zero-key violation rejects the whole file (the caller degrades to a
/// cold start) — a half-trusted snapshot is worse than none.
fn read_snapshot(bytes: &[u8]) -> Option<Vec<LogRecord>> {
    if bytes.len() < SNAP_MAGIC.len() + 8 || bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return None;
    }
    let head = SNAP_MAGIC.len();
    let count = u32::from_le_bytes(bytes[head..head + 4].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(bytes[head + 4..head + 8].try_into().ok()?);
    let body = &bytes[head + 8..];
    if body.len() != count * LOG_RECORD_BYTES || crc32(body) != crc {
        return None;
    }
    let records: Vec<LogRecord> = body
        .chunks_exact(LOG_RECORD_BYTES)
        .map(LogRecord::from_bytes)
        .collect();
    if !records_sorted(&records) || records.iter().any(|r| r.key == 0 || r.is_remove()) {
        return None;
    }
    Some(records)
}

/// Walks the log image segment by segment, collecting records until the
/// first torn or corrupt segment. Returns the records and the byte
/// offset of the last good segment boundary — everything past it is the
/// tail a crash tore, and the opener truncates it.
fn replay_log(bytes: &[u8]) -> (Vec<LogRecord>, u64) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= SEG_HEADER_BYTES {
        let magic = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
        if magic != SEG_MAGIC {
            break;
        }
        let count =
            u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[offset + 8..offset + 12].try_into().expect("4 bytes"));
        let body_len = match count.checked_mul(LOG_RECORD_BYTES) {
            Some(n) => n,
            None => break,
        };
        let body_start = offset + SEG_HEADER_BYTES;
        if bytes.len() - body_start < body_len {
            break; // torn mid-segment: the final append never completed
        }
        let body = &bytes[body_start..body_start + body_len];
        if crc32(body) != crc {
            break; // torn mid-record or bit rot: nothing past here is trusted
        }
        // Key 0 marks an empty hint slot and is never logged by this
        // crate; a CRC-valid segment carrying one is foreign data, and
        // dropping the record (not the segment) is the safe reading.
        records.extend(
            body.chunks_exact(LOG_RECORD_BYTES)
                .map(LogRecord::from_bytes)
                .filter(|r| r.key != 0),
        );
        offset = body_start + body_len;
    }
    (records, offset as u64)
}

impl HintLog {
    /// Opens (creating if absent) the durable store in `dir` and replays
    /// it: snapshot records first, then the surviving log tail, with any
    /// torn tail truncated off the file before the log accepts appends.
    ///
    /// # Errors
    ///
    /// Fails on directory creation or file I/O errors. Corrupt
    /// *contents* are never an error — they are recovery input
    /// (truncated tail, ignored snapshot) reported in [`ReplayStats`].
    pub fn open(dir: &Path) -> io::Result<Recovered> {
        std::fs::create_dir_all(dir)?;
        let mut stats = ReplayStats::default();

        let snap_path = dir.join(SNAPSHOT_FILE);
        let mut records = match std::fs::read(&snap_path) {
            Ok(bytes) => match read_snapshot(&bytes) {
                Some(snap) => {
                    stats.snapshot_records = snap.len();
                    snap
                }
                None => {
                    stats.corrupt_snapshot = true;
                    Vec::new()
                }
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };

        let mut log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(LOG_FILE))?;
        let mut bytes = Vec::new();
        log.read_to_end(&mut bytes)?;
        let (tail, good_len) = replay_log(&bytes);
        stats.log_records = tail.len();
        stats.truncated_bytes = bytes.len() as u64 - good_len;
        if stats.truncated_bytes > 0 {
            log.set_len(good_len)?;
            log.sync_data()?;
        }
        log.seek(SeekFrom::Start(good_len))?;
        records.extend(tail);

        Ok(Recovered {
            log: HintLog {
                dir: dir.to_path_buf(),
                log,
                log_len: good_len,
            },
            records,
            stats,
        })
    }

    /// Appends one CRC-framed segment holding `records`. Buffered write
    /// only — durability waits for the next [`HintLog::sync`], which the
    /// node batches at its flush cadence to keep fsync off the hot path.
    ///
    /// # Errors
    ///
    /// Propagates write errors; on failure the next open truncates any
    /// partial segment.
    pub fn append(&mut self, records: &[LogRecord]) -> io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut body = Vec::with_capacity(records.len() * LOG_RECORD_BYTES);
        for r in records {
            body.extend_from_slice(&r.to_bytes());
        }
        let mut frame = Vec::with_capacity(SEG_HEADER_BYTES + body.len());
        frame.extend_from_slice(&SEG_MAGIC.to_le_bytes());
        frame.extend_from_slice(&(records.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.log.write_all(&frame)?;
        self.log_len += frame.len() as u64;
        Ok(())
    }

    /// Flushes appended segments to stable storage (fsync).
    ///
    /// # Errors
    ///
    /// Propagates the fsync error.
    pub fn sync(&mut self) -> io::Result<()> {
        self.log.sync_data()
    }

    /// Rewrites the snapshot from the live table (`entries` as
    /// `(key, machine)` pairs, any order — compaction sorts them by key,
    /// the on-disk invariant) and truncates the log. Written
    /// tmp-then-rename with fsyncs so a crash at any point leaves either
    /// the old snapshot + full log or the new snapshot (+ an already
    /// re-applied log tail, which replay converges over).
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors; the store stays usable (the old
    /// snapshot and log remain authoritative).
    pub fn compact(&mut self, entries: &[(u64, u64)]) -> io::Result<()> {
        // bh-lint: allow(no-hot-alloc, reason = "compaction copies the entry set once per threshold crossing, amortized far off the request path")
        let mut sorted: Vec<(u64, u64)> = entries.to_vec();
        sorted.sort_unstable_by_key(|&(key, _)| key);

        let mut image = Vec::with_capacity(SNAP_MAGIC.len() + 8 + sorted.len() * LOG_RECORD_BYTES);
        image.extend_from_slice(&SNAP_MAGIC);
        image.extend_from_slice(&(sorted.len() as u32).to_le_bytes());
        let body_at = image.len() + 4;
        image.extend_from_slice(&[0u8; 4]); // CRC back-patched below
        for &(key, machine) in &sorted {
            image.extend_from_slice(&LogRecord::add(key, machine).to_bytes());
        }
        let crc = crc32(&image[body_at..]);
        image[body_at - 4..body_at].copy_from_slice(&crc.to_le_bytes());

        let tmp_path = self.dir.join("snapshot.tmp");
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(&image)?;
        tmp.sync_data()?;
        drop(tmp);
        std::fs::rename(&tmp_path, self.dir.join(SNAPSHOT_FILE))?;
        // Make the rename itself durable before dropping the log that
        // the old snapshot depended on.
        File::open(&self.dir)?.sync_all()?;

        self.log.set_len(0)?;
        self.log.seek(SeekFrom::Start(0))?;
        self.log.sync_data()?;
        self.log_len = 0;
        Ok(())
    }

    /// Current byte length of the live log (compaction resets it to 0).
    pub fn log_bytes(&self) -> u64 {
        self.log_len
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bh-hintlog-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_check_value() {
        // The CRC-32/IEEE check value from the catalogue of parametrised
        // CRC algorithms.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_layout_is_sixteen_bytes_and_round_trips() {
        let add = LogRecord::add(0xDEAD_BEEF, 0x7F00_0001_4650_0000);
        assert_eq!(add.to_bytes().len(), LOG_RECORD_BYTES);
        assert_eq!(LogRecord::from_bytes(&add.to_bytes()), add);
        assert!(!add.is_remove());
        assert_eq!(add.machine(), 0x7F00_0001_4650_0000);

        let rm = LogRecord::remove(42);
        assert!(rm.is_remove());
        assert_eq!(rm.machine(), 0);
        assert_eq!(LogRecord::from_bytes(&rm.to_bytes()), rm);
    }

    #[test]
    fn append_sync_reopen_replays_everything() {
        let dir = tmpdir("roundtrip");
        let batch1 = vec![LogRecord::add(1, 1 << 16), LogRecord::add(2, 2 << 16)];
        let batch2 = vec![LogRecord::remove(1), LogRecord::add(3, 3 << 16)];
        {
            let mut rec = HintLog::open(&dir).expect("open fresh");
            assert!(rec.records.is_empty());
            rec.log.append(&batch1).expect("append");
            rec.log.append(&batch2).expect("append");
            rec.log.sync().expect("sync");
        }
        let rec = HintLog::open(&dir).expect("reopen");
        let mut expected = batch1;
        expected.extend(batch2);
        assert_eq!(rec.records, expected);
        assert_eq!(rec.stats.log_records, 4);
        assert_eq!(rec.stats.snapshot_records, 0);
        assert_eq!(rec.stats.truncated_bytes, 0);
        assert!(!rec.stats.corrupt_snapshot);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmpdir("torn");
        {
            let mut rec = HintLog::open(&dir).expect("open");
            rec.log
                .append(&[LogRecord::add(7, 7 << 16)])
                .expect("append");
            rec.log.sync().expect("sync");
        }
        // Simulate a crash mid-append: a valid header promising more
        // bytes than were written.
        let path = dir.join(LOG_FILE);
        let mut bytes = std::fs::read(&path).expect("read log");
        let good = bytes.len() as u64;
        bytes.extend_from_slice(&SEG_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0xAB; 7]); // torn final record
        std::fs::write(&path, &bytes).expect("write torn log");

        let rec = HintLog::open(&dir).expect("reopen over torn tail");
        assert_eq!(rec.records, vec![LogRecord::add(7, 7 << 16)]);
        assert_eq!(rec.stats.truncated_bytes, bytes.len() as u64 - good);
        assert_eq!(
            std::fs::metadata(&path).expect("stat").len(),
            good,
            "torn tail must be truncated off the file"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_segment_crc_stops_replay_at_boundary() {
        let dir = tmpdir("crc");
        {
            let mut rec = HintLog::open(&dir).expect("open");
            rec.log.append(&[LogRecord::add(1, 1 << 16)]).expect("a");
            rec.log.append(&[LogRecord::add(2, 2 << 16)]).expect("b");
            rec.log.sync().expect("sync");
        }
        let path = dir.join(LOG_FILE);
        let mut bytes = std::fs::read(&path).expect("read");
        let seg = SEG_HEADER_BYTES + LOG_RECORD_BYTES;
        bytes[seg + SEG_HEADER_BYTES] ^= 0xFF; // flip a body byte of segment 2
        std::fs::write(&path, &bytes).expect("write");

        let rec = HintLog::open(&dir).expect("reopen");
        assert_eq!(rec.records, vec![LogRecord::add(1, 1 << 16)]);
        assert_eq!(rec.stats.truncated_bytes, seg as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_then_tail_compose_on_replay() {
        let dir = tmpdir("compose");
        {
            let mut rec = HintLog::open(&dir).expect("open");
            rec.log
                .compact(&[(5, 5 << 16), (2, 2 << 16), (9, 9 << 16)])
                .expect("compact");
            assert_eq!(rec.log.log_bytes(), 0);
            rec.log
                .append(&[LogRecord::remove(5), LogRecord::add(4, 4 << 16)])
                .expect("append tail");
            rec.log.sync().expect("sync");
        }
        let rec = HintLog::open(&dir).expect("reopen");
        assert_eq!(rec.stats.snapshot_records, 3);
        assert_eq!(rec.stats.log_records, 2);
        // Snapshot records come back sorted by key, then the tail.
        assert_eq!(
            rec.records,
            vec![
                LogRecord::add(2, 2 << 16),
                LogRecord::add(5, 5 << 16),
                LogRecord::add(9, 9 << 16),
                LogRecord::remove(5),
                LogRecord::add(4, 4 << 16),
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_degrades_to_cold_start() {
        let dir = tmpdir("badsnap");
        {
            let mut rec = HintLog::open(&dir).expect("open");
            rec.log.compact(&[(1, 1 << 16)]).expect("compact");
            rec.log
                .append(&[LogRecord::add(2, 2 << 16)])
                .expect("append");
            rec.log.sync().expect("sync");
        }
        let snap = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&snap).expect("read snapshot");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&snap, &bytes).expect("write corrupt snapshot");

        let rec = HintLog::open(&dir).expect("reopen");
        assert!(rec.stats.corrupt_snapshot);
        assert_eq!(rec.stats.snapshot_records, 0);
        assert_eq!(rec.records, vec![LogRecord::add(2, 2 << 16)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsorted_snapshot_is_rejected() {
        // Hand-build a CRC-valid snapshot whose records are out of key
        // order: replay must refuse it (the sortedness invariant is part
        // of the format, not a stylistic preference).
        let mut body = Vec::new();
        body.extend_from_slice(&LogRecord::add(9, 1 << 16).to_bytes());
        body.extend_from_slice(&LogRecord::add(3, 1 << 16).to_bytes());
        let mut image = Vec::new();
        image.extend_from_slice(&SNAP_MAGIC);
        image.extend_from_slice(&2u32.to_le_bytes());
        image.extend_from_slice(&crc32(&body).to_le_bytes());
        image.extend_from_slice(&body);
        assert!(read_snapshot(&image).is_none());
    }

    #[test]
    fn empty_append_is_a_no_op() {
        let dir = tmpdir("empty");
        let mut rec = HintLog::open(&dir).expect("open");
        rec.log.append(&[]).expect("append nothing");
        assert_eq!(rec.log.log_bytes(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
