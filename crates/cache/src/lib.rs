//! Cache substrates for the Beyond Hierarchies reproduction.
//!
//! Three building blocks every strategy shares:
//!
//! * [`LruCache`] — a byte-capacity LRU data cache with versioned entries
//!   (plus [`GdsCache`], the era's GreedyDual-Size alternative, for
//!   replacement-policy ablations)
//!   (strong consistency by invalidation, §2.2.1) and an explicit
//!   *demote* operation used by the update-push algorithm's aging rule
//!   (§4.1.2);
//! * [`HintCache`] — the paper's hint store (§3.2.1): small, **fixed-size
//!   16-byte records** (8-byte URL-hash key + 8-byte machine identifier) in
//!   a **4-way set-associative array**, sized in bytes, plus an unbounded
//!   variant for "infinite hint cache" experiments (Figure 5's rightmost
//!   point);
//! * [`classify`] — the miss taxonomy of Figure 2 (compulsory / capacity /
//!   communication / uncachable / error), implemented as a classifying
//!   wrapper over a shared global cache.
//!
//! # Examples
//!
//! ```
//! use bh_cache::{HintCache, LruCache};
//! use bh_simcore::ByteSize;
//!
//! let mut data = LruCache::new(ByteSize::from_kb(64));
//! data.insert(1, ByteSize::from_kb(40), 0);
//! data.insert(2, ByteSize::from_kb(40), 0); // evicts object 1
//! assert!(data.get(1, 0).is_none());
//! assert!(data.get(2, 0).is_some());
//!
//! let mut hints = HintCache::with_capacity(ByteSize::from_kb(1));
//! hints.insert(0xfeed, 7);
//! assert_eq!(hints.lookup(0xfeed), Some(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod gds;
pub mod hint;
pub mod lru;
pub mod random;

pub use classify::{AccessOutcome, ClassRates, ClassifyingCache, MissClass};
pub use gds::GdsCache;
pub use hint::{HintCache, HintRecord, HINT_RECORD_BYTES};
pub use lru::{Evicted, LruCache};
pub use random::RandomCache;

/// The replacement policies the ablation runner compares. The enum is
/// the stable index: runners and artifacts order rows by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Replacement {
    /// Least-recently-used ([`LruCache`]).
    Lru,
    /// GreedyDual-Size ([`GdsCache`]).
    GreedyDualSize,
    /// Seeded-random victims ([`RandomCache`]).
    Random,
}

impl Replacement {
    /// Every policy, in the canonical ablation-row order.
    pub const ALL: [Replacement; 3] = [
        Replacement::Lru,
        Replacement::GreedyDualSize,
        Replacement::Random,
    ];

    /// The row label the ablation tables print.
    pub fn label(self) -> &'static str {
        match self {
            Replacement::Lru => "LRU",
            Replacement::GreedyDualSize => "GreedyDual-Size",
            Replacement::Random => "Random",
        }
    }
}
