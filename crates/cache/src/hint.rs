//! The location-hint store (§3.2.1).
//!
//! A hint is an `(object, location)` pair naming the node that caches the
//! nearest known copy of an object. The paper's key implementation insight
//! is to store hints as **small, fixed-sized records** — an 8-byte hash of
//! the URL plus an 8-byte machine identifier, 16 bytes total — in a simple
//! array managed as a **4-way set-associative cache** indexed by the URL
//! hash. At that size a hint is ~3 orders of magnitude smaller than the
//! average 10 KB object, so a cache that dedicates 10% of its space to
//! hints can index ~two orders of magnitude more data than it stores.
//!
//! [`HintCache`] reproduces exactly that structure (bounded, set
//! associative, with within-set LRU), plus an unbounded variant for the
//! "infinite hint cache" end of Figure 5.

use bh_simcore::ByteSize;
use std::collections::HashMap;

/// Size of one hint record on disk/in memory: 8-byte key + 8-byte location.
pub const HINT_RECORD_BYTES: u64 = 16;

/// Associativity of the bounded store (the paper uses 4).
pub const DEFAULT_WAYS: usize = 4;

/// One hint record. `key == 0` marks an invalid (empty) slot, mirroring the
/// prototype's special hash value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HintRecord {
    /// 64-bit URL-hash key (0 = empty slot).
    pub key: u64,
    /// Opaque 64-bit machine identifier (IP + port in the prototype, node
    /// index in the simulator).
    pub location: u64,
}

#[derive(Debug, Clone)]
enum Store {
    /// `sets × ways` flat array, stored as parallel zeroed `Vec<u64>`s so
    /// the allocation is lazily paged (a 500 MB store costs address space,
    /// not resident memory, until sets are touched) — and a slot's key and
    /// location sit in adjacent words, preserving the 16-byte record
    /// layout of §3.2.1.
    SetAssoc {
        keys: Vec<u64>,
        locs: Vec<u64>,
        sets: usize,
        ways: usize,
    },
    Unbounded(HashMap<u64, u64>),
}

/// The hint store. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct HintCache {
    store: Store,
    len: usize,
    /// Lookups that found a record.
    hits: u64,
    /// Lookups that found nothing.
    misses: u64,
    /// Insertions that displaced a valid record (set overflow).
    displacements: u64,
}

impl HintCache {
    /// Creates a bounded, 4-way set-associative store occupying at most
    /// `capacity` bytes at [`HINT_RECORD_BYTES`] per record.
    ///
    /// A capacity of [`ByteSize::MAX`] creates an unbounded store. Small
    /// capacities are rounded up to one full set.
    pub fn with_capacity(capacity: ByteSize) -> Self {
        Self::with_capacity_and_ways(capacity, DEFAULT_WAYS)
    }

    /// Creates a bounded store with explicit associativity (for the
    /// associativity ablation; the paper's choice is 4).
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0`.
    pub fn with_capacity_and_ways(capacity: ByteSize, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        if capacity.is_unlimited() {
            return Self::unbounded();
        }
        let entries = (capacity.as_bytes() / HINT_RECORD_BYTES).max(ways as u64) as usize;
        let sets = (entries / ways).max(1);
        HintCache {
            store: Store::SetAssoc {
                keys: vec![0u64; sets * ways],
                locs: vec![0u64; sets * ways],
                sets,
                ways,
            },
            len: 0,
            hits: 0,
            misses: 0,
            displacements: 0,
        }
    }

    /// Creates an unbounded store (perfect hint index).
    pub fn unbounded() -> Self {
        HintCache {
            store: Store::Unbounded(HashMap::new()),
            len: 0,
            hits: 0,
            misses: 0,
            displacements: 0,
        }
    }

    /// Number of records currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of records (`None` if unbounded).
    pub fn capacity_records(&self) -> Option<usize> {
        match &self.store {
            Store::SetAssoc { sets, ways, .. } => Some(sets * ways),
            Store::Unbounded(_) => None,
        }
    }

    /// Bytes this store occupies at 16 bytes/record (the *array* size for
    /// the bounded store, the live-record footprint for the unbounded one).
    pub fn footprint(&self) -> ByteSize {
        let records = match &self.store {
            Store::SetAssoc { sets, ways, .. } => (sets * ways) as u64,
            Store::Unbounded(m) => m.len() as u64,
        };
        ByteSize::from_bytes(records * HINT_RECORD_BYTES)
    }

    /// Lookups that found a record so far.
    pub fn hit_count(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing so far.
    pub fn miss_count(&self) -> u64 {
        self.misses
    }

    /// Insertions that displaced a valid record so far.
    pub fn displacement_count(&self) -> u64 {
        self.displacements
    }

    fn set_range(sets: usize, ways: usize, key: u64) -> std::ops::Range<usize> {
        let set = (key % sets as u64) as usize;
        set * ways..(set + 1) * ways
    }

    /// Looks up the location hint for `key`, promoting it within its set.
    ///
    /// Keys of 0 are reserved for empty slots and always miss.
    pub fn lookup(&mut self, key: u64) -> Option<u64> {
        if key == 0 {
            self.misses += 1;
            return None;
        }
        let found = match &mut self.store {
            Store::SetAssoc {
                keys,
                locs,
                sets,
                ways,
            } => {
                let range = Self::set_range(*sets, *ways, key);
                let kset = &mut keys[range.clone()];
                match kset.iter().position(|&k| k == key) {
                    Some(pos) => {
                        let lset = &mut locs[range];
                        let loc = lset[pos];
                        // Within-set move-to-front: cheap LRU over 4 slots.
                        kset.copy_within(0..pos, 1);
                        kset[0] = key;
                        lset.copy_within(0..pos, 1);
                        lset[0] = loc;
                        Some(loc)
                    }
                    None => None,
                }
            }
            Store::Unbounded(m) => m.get(&key).copied(),
        };
        match found {
            Some(loc) => {
                self.hits += 1;
                Some(loc)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up without promoting or counting.
    pub fn peek(&self, key: u64) -> Option<u64> {
        if key == 0 {
            return None;
        }
        match &self.store {
            Store::SetAssoc {
                keys,
                locs,
                sets,
                ways,
            } => {
                let range = Self::set_range(*sets, *ways, key);
                keys[range.clone()]
                    .iter()
                    .position(|&k| k == key)
                    .map(|pos| locs[range][pos])
            }
            Store::Unbounded(m) => m.get(&key).copied(),
        }
    }

    /// Inserts or updates the hint for `key`. In the bounded store the
    /// record lands at the front of its set, displacing the set's LRU
    /// record if the set is full.
    ///
    /// # Panics
    ///
    /// Panics if `key == 0` (reserved for empty slots).
    pub fn insert(&mut self, key: u64, location: u64) {
        assert_ne!(key, 0, "hint key 0 is reserved");
        match &mut self.store {
            Store::SetAssoc {
                keys,
                locs,
                sets,
                ways,
            } => {
                let range = Self::set_range(*sets, *ways, key);
                let kset = &mut keys[range.clone()];
                let front = |kset: &mut [u64], lset: &mut [u64], pos: usize| {
                    kset.copy_within(0..pos, 1);
                    lset.copy_within(0..pos, 1);
                    kset[0] = key;
                    lset[0] = location;
                };
                if let Some(pos) = kset.iter().position(|&k| k == key) {
                    front(kset, &mut locs[range], pos);
                    return;
                }
                if let Some(pos) = kset.iter().position(|&k| k == 0) {
                    front(kset, &mut locs[range], pos);
                    self.len += 1;
                    return;
                }
                // Set full: displace the LRU (last) record.
                let w = kset.len();
                front(kset, &mut locs[range], w - 1);
                self.displacements += 1;
            }
            Store::Unbounded(m) => {
                if m.insert(key, location).is_none() {
                    self.len += 1;
                }
            }
        }
    }

    /// Enumerates every live `(key, location)` record, in set order for the
    /// bounded store (deterministic) and sorted by key for the unbounded one
    /// (so snapshots compare stably across store kinds).
    pub fn entries(&self) -> Vec<(u64, u64)> {
        match &self.store {
            Store::SetAssoc { keys, locs, .. } => keys
                .iter()
                .zip(locs.iter())
                .filter(|(&k, _)| k != 0)
                .map(|(&k, &l)| (k, l))
                .collect(),
            Store::Unbounded(m) => {
                let mut out: Vec<(u64, u64)> = m.iter().map(|(&k, &l)| (k, l)).collect();
                out.sort_unstable();
                out
            }
        }
    }

    /// Drops every hint that names `location` — the stale-hint garbage
    /// collection a node runs when a peer is confirmed dead, so a departed
    /// machine's hints stop costing probes. Returns the number purged.
    ///
    /// One pass over the store: O(capacity) for the bounded array,
    /// O(records) for the unbounded map — independent of request rate, which
    /// is what bounds a dead peer's total cost at O(1) per object.
    pub fn purge_location(&mut self, location: u64) -> usize {
        let mut purged = 0usize;
        match &mut self.store {
            Store::SetAssoc {
                keys,
                locs,
                sets,
                ways,
            } => {
                for set in 0..*sets {
                    let range = set * *ways..(set + 1) * *ways;
                    let kset = &mut keys[range.clone()];
                    let lset = &mut locs[range];
                    // Compact each set in place, preserving LRU order of the
                    // survivors.
                    let mut write = 0usize;
                    for read in 0..kset.len() {
                        if kset[read] == 0 {
                            break;
                        }
                        if lset[read] == location {
                            purged += 1;
                            continue;
                        }
                        kset[write] = kset[read];
                        lset[write] = lset[read];
                        write += 1;
                    }
                    for slot in write..kset.len() {
                        kset[slot] = 0;
                        lset[slot] = 0;
                    }
                }
            }
            Store::Unbounded(m) => {
                let before = m.len();
                m.retain(|_, &mut l| l != location);
                purged = before - m.len();
            }
        }
        self.len -= purged;
        purged
    }

    /// Removes the hint for `key`; returns the stored location if present.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        if key == 0 {
            return None;
        }
        match &mut self.store {
            Store::SetAssoc {
                keys,
                locs,
                sets,
                ways,
            } => {
                let range = Self::set_range(*sets, *ways, key);
                let kset = &mut keys[range.clone()];
                let pos = kset.iter().position(|&k| k == key)?;
                let lset = &mut locs[range];
                let loc = lset[pos];
                // Compact the set: shift the remainder left, clear the last.
                kset.copy_within(pos + 1.., pos);
                lset.copy_within(pos + 1.., pos);
                let w = kset.len();
                kset[w - 1] = 0;
                lset[w - 1] = 0;
                self.len -= 1;
                Some(loc)
            }
            Store::Unbounded(m) => {
                let removed = m.remove(&key);
                if removed.is_some() {
                    self.len -= 1;
                }
                removed
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_size_is_sixteen_bytes() {
        assert_eq!(HINT_RECORD_BYTES, 16);
        assert_eq!(std::mem::size_of::<HintRecord>() as u64, HINT_RECORD_BYTES);
    }

    #[test]
    fn capacity_math() {
        // 1 MB of hints = 65536 records, as the paper's sizing arithmetic has it.
        let h = HintCache::with_capacity(ByteSize::from_mb(1));
        assert_eq!(h.capacity_records(), Some(65_536));
        assert_eq!(h.footprint(), ByteSize::from_mb(1));
        assert!(HintCache::unbounded().capacity_records().is_none());
    }

    #[test]
    fn insert_lookup_remove() {
        let mut h = HintCache::with_capacity(ByteSize::from_kb(1));
        assert_eq!(h.lookup(5), None);
        h.insert(5, 100);
        assert_eq!(h.lookup(5), Some(100));
        assert_eq!(h.len(), 1);
        h.insert(5, 200); // update in place
        assert_eq!(h.lookup(5), Some(200));
        assert_eq!(h.len(), 1);
        assert_eq!(h.remove(5), Some(200));
        assert_eq!(h.remove(5), None);
        assert!(h.is_empty());
    }

    #[test]
    fn set_overflow_displaces_lru() {
        // One set of 4 ways: capacity 64 bytes.
        let mut h = HintCache::with_capacity(ByteSize::from_bytes(64));
        assert_eq!(h.capacity_records(), Some(4));
        // All keys land in the single set.
        for k in 1..=4u64 {
            h.insert(k, k * 10);
        }
        assert_eq!(h.len(), 4);
        // Touch key 1 so it is MRU; key 2 becomes LRU.
        assert_eq!(h.lookup(1), Some(10));
        h.insert(5, 50);
        assert_eq!(h.displacement_count(), 1);
        assert_eq!(h.peek(2), None, "LRU record displaced");
        assert_eq!(h.peek(1), Some(10));
        assert_eq!(h.peek(5), Some(50));
    }

    #[test]
    fn hot_keys_survive_with_associativity() {
        // The paper keeps "a modest amount of associativity to guard against
        // several hot URLs landing in the same hash bucket".
        let mut h = HintCache::with_capacity(ByteSize::from_bytes(64)); // 1 set × 4 ways
        h.insert(1, 11);
        h.insert(2, 22);
        for cold in 100..120u64 {
            h.insert(cold, cold);
            // Keep the two hot keys touched.
            assert_eq!(h.lookup(1), Some(11));
            assert_eq!(h.lookup(2), Some(22));
        }
        assert_eq!(h.peek(1), Some(11));
        assert_eq!(h.peek(2), Some(22));
    }

    #[test]
    fn zero_key_reserved() {
        let mut h = HintCache::with_capacity(ByteSize::from_kb(1));
        assert_eq!(h.lookup(0), None);
        assert_eq!(h.remove(0), None);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn zero_key_insert_panics() {
        HintCache::with_capacity(ByteSize::from_kb(1)).insert(0, 1);
    }

    #[test]
    fn unbounded_stores_everything() {
        let mut h = HintCache::unbounded();
        for k in 1..=100_000u64 {
            h.insert(k, k);
        }
        assert_eq!(h.len(), 100_000);
        for k in 1..=100_000u64 {
            assert_eq!(h.peek(k), Some(k));
        }
        assert_eq!(h.displacement_count(), 0);
    }

    #[test]
    fn stats_counters() {
        let mut h = HintCache::with_capacity(ByteSize::from_kb(1));
        h.insert(3, 30);
        h.lookup(3);
        h.lookup(4);
        assert_eq!(h.hit_count(), 1);
        assert_eq!(h.miss_count(), 1);
    }

    #[test]
    fn remove_compacts_set() {
        let mut h = HintCache::with_capacity(ByteSize::from_bytes(64));
        for k in 1..=4u64 {
            h.insert(k, k);
        }
        h.remove(4); // was at front (MRU)
        h.insert(9, 9);
        assert_eq!(h.len(), 4);
        for k in [1u64, 2, 3, 9] {
            assert_eq!(h.peek(k), Some(k), "key {k} must survive");
        }
    }

    mod props {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The bounded store is a lossy map: every lookup that returns a
            /// value returns the *most recently inserted* value for that key.
            #[test]
            fn never_returns_stale_locations(
                ops in proptest::collection::vec((1u64..100, 0u64..1000), 1..400)
            ) {
                let mut h = HintCache::with_capacity(ByteSize::from_bytes(256));
                let mut truth: HashMap<u64, u64> = HashMap::new();
                for (key, loc) in ops {
                    h.insert(key, loc);
                    truth.insert(key, loc);
                    if let Some(found) = h.peek(key) {
                        prop_assert_eq!(found, truth[&key]);
                    } else {
                        prop_assert!(false, "just-inserted key must be present");
                    }
                }
                // Anything still present must agree with the truth map.
                for k in 1u64..100 {
                    if let Some(found) = h.peek(k) {
                        prop_assert_eq!(Some(found), truth.get(&k).copied());
                    }
                }
            }

            /// len() never exceeds capacity and matches live slots.
            #[test]
            fn len_bounded(ops in proptest::collection::vec((1u64..50, 0u64..10), 1..200),
                           ways in 1usize..8) {
                let mut h = HintCache::with_capacity_and_ways(ByteSize::from_bytes(320), ways);
                let cap = h.capacity_records().unwrap();
                for (key, loc) in ops {
                    h.insert(key, loc);
                    prop_assert!(h.len() <= cap);
                }
            }
        }
    }
}
