//! Byte-capacity LRU data cache with versioned entries.
//!
//! Entries are keyed by a 64-bit object identifier and carry the object's
//! size and version. Capacity is in bytes ([`bh_simcore::ByteSize::MAX`]
//! means unlimited, the paper's "infinite disk" configuration). The
//! recency list is an intrusive doubly-linked list over a slab, so every
//! operation is O(1) amortized.

use bh_simcore::ByteSize;
use std::collections::HashMap;

/// An entry evicted to make room.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Object key.
    pub key: u64,
    /// Object size.
    pub size: ByteSize,
    /// Version that was stored.
    pub version: u32,
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    size: u64,
    version: u32,
    prev: u32,
    next: u32,
}

/// A byte-capacity LRU cache of versioned objects.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: ByteSize,
    used: u64,
    map: HashMap<u64, u32>,
    slab: Vec<Node>,
    free: Vec<u32>,
    /// Most recently used. NIL when empty.
    head: u32,
    /// Least recently used. NIL when empty.
    tail: u32,
}

impl LruCache {
    /// Creates a cache with the given byte capacity
    /// ([`ByteSize::MAX`] = unlimited).
    pub fn new(capacity: ByteSize) -> Self {
        LruCache {
            capacity,
            used: 0,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Creates an unlimited-capacity cache.
    pub fn unbounded() -> Self {
        Self::new(ByteSize::MAX)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.used)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn detach(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.slab[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let n = &mut self.slab[idx as usize];
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.slab[old_head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    fn attach_back(&mut self, idx: u32) {
        let old_tail = self.tail;
        {
            let n = &mut self.slab[idx as usize];
            n.next = NIL;
            n.prev = old_tail;
        }
        if old_tail != NIL {
            self.slab[old_tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
    }

    fn remove_idx(&mut self, idx: u32) -> Evicted {
        self.detach(idx);
        let n = self.slab[idx as usize];
        self.map.remove(&n.key);
        self.used -= n.size;
        self.free.push(idx);
        Evicted {
            key: n.key,
            size: ByteSize::from_bytes(n.size),
            version: n.version,
        }
    }

    /// Looks up `key`, requiring at least `min_version`.
    ///
    /// * Fresh entry → promoted to most-recently-used, `Some((size, version))`.
    /// * Stale entry (stored version < `min_version`) → **invalidated**
    ///   (removed) and `None` is returned: this is how strong consistency
    ///   turns an update into a communication miss.
    /// * Absent → `None`.
    pub fn get(&mut self, key: u64, min_version: u32) -> Option<(ByteSize, u32)> {
        let idx = *self.map.get(&key)?;
        let (size, version) = {
            let n = &self.slab[idx as usize];
            (n.size, n.version)
        };
        if version < min_version {
            self.remove_idx(idx);
            return None;
        }
        self.detach(idx);
        self.attach_front(idx);
        Some((ByteSize::from_bytes(size), version))
    }

    /// Looks up without promoting or invalidating.
    pub fn peek(&self, key: u64) -> Option<(ByteSize, u32)> {
        let idx = *self.map.get(&key)?;
        let n = &self.slab[idx as usize];
        Some((ByteSize::from_bytes(n.size), n.version))
    }

    /// Whether `key` is present with version at least `min_version`.
    pub fn contains_fresh(&self, key: u64, min_version: u32) -> bool {
        self.peek(key).is_some_and(|(_, v)| v >= min_version)
    }

    /// Inserts (or refreshes) `key`, evicting LRU entries as needed.
    /// Returns the evicted entries (oldest first).
    ///
    /// Objects larger than the whole capacity are not cached (the returned
    /// vector is empty and the object is simply not stored), mirroring
    /// proxies' max-object-size policies.
    pub fn insert(&mut self, key: u64, size: ByteSize, version: u32) -> Vec<Evicted> {
        let mut evicted = Vec::new();
        let size_b = size.as_bytes();
        if !self.capacity.is_unlimited() && size_b > self.capacity.as_bytes() {
            return evicted;
        }
        // Refresh in place if already present.
        if let Some(&idx) = self.map.get(&key) {
            let old = self.slab[idx as usize].size;
            self.used = self.used - old + size_b;
            {
                let n = &mut self.slab[idx as usize];
                n.size = size_b;
                n.version = n.version.max(version);
            }
            self.detach(idx);
            self.attach_front(idx);
        } else {
            let idx = match self.free.pop() {
                Some(i) => {
                    self.slab[i as usize] = Node {
                        key,
                        size: size_b,
                        version,
                        prev: NIL,
                        next: NIL,
                    };
                    i
                }
                None => {
                    let i = u32::try_from(self.slab.len()).expect("cache entries fit in u32");
                    self.slab.push(Node {
                        key,
                        size: size_b,
                        version,
                        prev: NIL,
                        next: NIL,
                    });
                    i
                }
            };
            self.map.insert(key, idx);
            self.used += size_b;
            self.attach_front(idx);
        }
        // Evict from the cold end until within capacity.
        if !self.capacity.is_unlimited() {
            while self.used > self.capacity.as_bytes() {
                let tail = self.tail;
                debug_assert_ne!(tail, NIL, "over capacity with empty list");
                if self.slab[tail as usize].key == key {
                    // The new entry itself is the only one left; keep it.
                    break;
                }
                evicted.push(self.remove_idx(tail));
            }
        }
        evicted
    }

    /// Removes `key` (e.g. on invalidation). Returns the removed entry.
    pub fn remove(&mut self, key: u64) -> Option<Evicted> {
        let idx = *self.map.get(&key)?;
        Some(self.remove_idx(idx))
    }

    /// Moves `key` to the cold (LRU) end without removing it — the update
    /// push algorithm's "aging": objects updated many times without being
    /// read drift out of the cache (§4.1.2).
    pub fn demote(&mut self, key: u64) -> bool {
        let Some(&idx) = self.map.get(&key) else {
            return false;
        };
        self.detach(idx);
        self.attach_back(idx);
        true
    }

    /// The least-recently-used key, if any.
    pub fn lru_key(&self) -> Option<u64> {
        (self.tail != NIL).then(|| self.slab[self.tail as usize].key)
    }

    /// Iterates over keys from most- to least-recently used.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            cache: self,
            cur: self.head,
        }
    }
}

/// Iterator over `(key, size, version)` in recency order.
#[derive(Debug)]
pub struct Iter<'a> {
    cache: &'a LruCache,
    cur: u32,
}

impl Iterator for Iter<'_> {
    type Item = (u64, ByteSize, u32);
    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let n = &self.cache.slab[self.cur as usize];
        self.cur = n.next;
        Some((n.key, ByteSize::from_bytes(n.size), n.version))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb(n: u64) -> ByteSize {
        ByteSize::from_kb(n)
    }

    #[test]
    fn insert_get_basic() {
        let mut c = LruCache::new(kb(100));
        assert!(c.is_empty());
        assert!(c.insert(1, kb(10), 0).is_empty());
        assert_eq!(c.get(1, 0), Some((kb(10), 0)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), kb(10));
        assert_eq!(c.get(2, 0), None);
    }

    #[test]
    fn evicts_lru_order() {
        let mut c = LruCache::new(kb(30));
        c.insert(1, kb(10), 0);
        c.insert(2, kb(10), 0);
        c.insert(3, kb(10), 0);
        // Touch 1 so 2 becomes LRU.
        assert!(c.get(1, 0).is_some());
        let ev = c.insert(4, kb(10), 0);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].key, 2);
        assert!(c.get(2, 0).is_none());
        assert!(c.get(1, 0).is_some());
    }

    #[test]
    fn eviction_can_cascade() {
        let mut c = LruCache::new(kb(30));
        c.insert(1, kb(10), 0);
        c.insert(2, kb(10), 0);
        c.insert(3, kb(10), 0);
        let ev = c.insert(4, kb(25), 0);
        assert_eq!(ev.iter().map(|e| e.key).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(c.len(), 1);
        assert!(c.used_bytes() <= kb(30));
    }

    #[test]
    fn stale_version_invalidates_on_get() {
        let mut c = LruCache::new(kb(100));
        c.insert(1, kb(10), 1);
        assert_eq!(c.get(1, 1), Some((kb(10), 1)));
        assert_eq!(c.get(1, 2), None, "stale copy must not be served");
        assert!(c.peek(1).is_none(), "stale copy must be removed");
        assert_eq!(c.used_bytes(), ByteSize::ZERO);
    }

    #[test]
    fn contains_fresh_does_not_mutate() {
        let mut c = LruCache::new(kb(100));
        c.insert(1, kb(10), 1);
        assert!(c.contains_fresh(1, 1));
        assert!(!c.contains_fresh(1, 5));
        assert!(c.peek(1).is_some(), "contains_fresh must not invalidate");
    }

    #[test]
    fn refresh_updates_size_and_version() {
        let mut c = LruCache::new(kb(100));
        c.insert(1, kb(10), 1);
        c.insert(1, kb(20), 3);
        assert_eq!(c.get(1, 3), Some((kb(20), 3)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), kb(20));
    }

    #[test]
    fn refresh_never_downgrades_version() {
        let mut c = LruCache::new(kb(100));
        c.insert(1, kb(10), 5);
        c.insert(1, kb(10), 2);
        assert_eq!(c.peek(1), Some((kb(10), 5)));
    }

    #[test]
    fn oversized_object_not_cached() {
        let mut c = LruCache::new(kb(10));
        c.insert(7, kb(11), 0);
        assert!(c.peek(7).is_none());
        assert_eq!(c.used_bytes(), ByteSize::ZERO);
    }

    #[test]
    fn exactly_capacity_object_is_cached_alone() {
        let mut c = LruCache::new(kb(10));
        c.insert(1, kb(4), 0);
        let ev = c.insert(2, kb(10), 0);
        assert_eq!(ev.len(), 1);
        assert!(c.peek(2).is_some());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_and_reuse_slot() {
        let mut c = LruCache::new(kb(100));
        c.insert(1, kb(10), 0);
        c.insert(2, kb(10), 0);
        let removed = c.remove(1).expect("present");
        assert_eq!(removed.key, 1);
        assert_eq!(c.remove(1), None);
        c.insert(3, kb(10), 0);
        assert_eq!(c.len(), 2);
        let keys: Vec<u64> = c.iter().map(|(k, _, _)| k).collect();
        assert_eq!(keys, vec![3, 2]);
    }

    #[test]
    fn demote_moves_to_cold_end() {
        let mut c = LruCache::new(kb(30));
        c.insert(1, kb(10), 0);
        c.insert(2, kb(10), 0);
        c.insert(3, kb(10), 0);
        assert!(c.demote(3));
        assert_eq!(c.lru_key(), Some(3));
        let ev = c.insert(4, kb(10), 0);
        assert_eq!(ev[0].key, 3, "demoted entry evicted first");
        assert!(!c.demote(99));
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut c = LruCache::unbounded();
        for i in 0..10_000u64 {
            assert!(c.insert(i, kb(100), 0).is_empty());
        }
        assert_eq!(c.len(), 10_000);
    }

    #[test]
    fn iter_in_recency_order() {
        let mut c = LruCache::new(kb(100));
        for i in 1..=4u64 {
            c.insert(i, kb(1), 0);
        }
        c.get(2, 0);
        let keys: Vec<u64> = c.iter().map(|(k, _, _)| k).collect();
        assert_eq!(keys, vec![2, 4, 3, 1]);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Insert(u64, u64, u32),
            Get(u64, u32),
            Remove(u64),
            Demote(u64),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0u64..50, 1u64..20_000, 0u32..4).prop_map(|(k, s, v)| Op::Insert(k, s, v)),
                (0u64..50, 0u32..4).prop_map(|(k, v)| Op::Get(k, v)),
                (0u64..50).prop_map(Op::Remove),
                (0u64..50).prop_map(Op::Demote),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Capacity, byte accounting, and map/list consistency hold
            /// under arbitrary operation sequences.
            #[test]
            fn invariants_hold(ops in proptest::collection::vec(op_strategy(), 1..300)) {
                let cap = ByteSize::from_bytes(50_000);
                let mut c = LruCache::new(cap);
                for op in ops {
                    match op {
                        Op::Insert(k, s, v) => { c.insert(k, ByteSize::from_bytes(s), v); }
                        Op::Get(k, v) => { c.get(k, v); }
                        Op::Remove(k) => { c.remove(k); }
                        Op::Demote(k) => { c.demote(k); }
                    }
                    // Never over capacity.
                    prop_assert!(c.used_bytes() <= cap);
                    // Byte accounting matches the entries.
                    let sum: u64 = c.iter().map(|(_, s, _)| s.as_bytes()).sum();
                    prop_assert_eq!(sum, c.used_bytes().as_bytes());
                    // List length matches map length.
                    prop_assert_eq!(c.iter().count(), c.len());
                }
            }
        }
    }
}
