//! Byte-capacity cache with seeded-random replacement.
//!
//! The third arm of the replacement ablation, after LRU and
//! GreedyDual-Size: victims are drawn from a seeded LCG stream, so the
//! policy has no recency or cost signal at all. "Performance Evaluation
//! of the Random Replacement Policy for Networks of Caches" (PAPERS.md)
//! argues Random approximates LRU surprisingly well on Zipf-like
//! streams while being far cheaper to implement — this cache lets the
//! ablation quantify that gap on the paper's workloads.
//!
//! The API deliberately mirrors [`crate::LruCache`]: versioned entries,
//! stale copies invalidated on `get`, oversize objects never cached,
//! eviction until within capacity (never evicting the just-inserted
//! key). Replays are deterministic in `(capacity, seed, op sequence)`.

use crate::Evicted;
use bh_simcore::ByteSize;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Entry {
    key: u64,
    size: u64,
    version: u32,
}

/// A byte-capacity cache of versioned objects with seeded-random
/// replacement.
#[derive(Debug, Clone)]
pub struct RandomCache {
    capacity: ByteSize,
    used: u64,
    map: HashMap<u64, u32>,
    slots: Vec<Entry>,
    lcg: u64,
}

impl RandomCache {
    /// Creates a cache with the given byte capacity
    /// ([`ByteSize::MAX`] = unlimited) and LCG seed.
    pub fn new(capacity: ByteSize, seed: u64) -> Self {
        RandomCache {
            capacity,
            used: 0,
            map: HashMap::new(),
            slots: Vec::new(),
            // Seed 0 would fix Knuth's LCG at its additive constant for
            // one step; mixing a non-zero constant keeps every seed
            // usable without special cases.
            lcg: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Creates an unlimited-capacity cache (the seed is irrelevant:
    /// nothing is ever evicted).
    pub fn unbounded() -> Self {
        Self::new(ByteSize::MAX, 0)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.used)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Advances the LCG (Knuth's MMIX constants) and returns the next
    /// draw. The high bits carry the quality, so victim selection below
    /// shifts before reducing.
    fn next_draw(&mut self) -> u64 {
        self.lcg = self
            .lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.lcg >> 33
    }

    fn remove_slot(&mut self, idx: u32) -> Evicted {
        let e = self.slots.swap_remove(idx as usize);
        self.map.remove(&e.key);
        self.used -= e.size;
        // swap_remove moved the former last entry into `idx`; re-point it.
        if (idx as usize) < self.slots.len() {
            self.map.insert(self.slots[idx as usize].key, idx);
        }
        Evicted {
            key: e.key,
            size: ByteSize::from_bytes(e.size),
            version: e.version,
        }
    }

    /// Looks up `key`, requiring at least `min_version`.
    ///
    /// * Fresh entry → `Some((size, version))` (no promotion — Random
    ///   keeps no recency state).
    /// * Stale entry (stored version < `min_version`) → invalidated and
    ///   `None` (the communication-miss contract, as in LRU).
    /// * Absent → `None`.
    pub fn get(&mut self, key: u64, min_version: u32) -> Option<(ByteSize, u32)> {
        let idx = *self.map.get(&key)?;
        let e = self.slots[idx as usize];
        if e.version < min_version {
            self.remove_slot(idx);
            return None;
        }
        Some((ByteSize::from_bytes(e.size), e.version))
    }

    /// Looks up without invalidating.
    pub fn peek(&self, key: u64) -> Option<(ByteSize, u32)> {
        let idx = *self.map.get(&key)?;
        let e = &self.slots[idx as usize];
        Some((ByteSize::from_bytes(e.size), e.version))
    }

    /// Whether `key` is present with version at least `min_version`.
    pub fn contains_fresh(&self, key: u64, min_version: u32) -> bool {
        self.peek(key).is_some_and(|(_, v)| v >= min_version)
    }

    /// Inserts (or refreshes) `key`, evicting seeded-random victims as
    /// needed. Returns the evicted entries in eviction order.
    ///
    /// Objects larger than the whole capacity are not cached, and the
    /// just-inserted key is never its own victim — both as in
    /// [`crate::LruCache`]. Refreshing keeps the higher version.
    pub fn insert(&mut self, key: u64, size: ByteSize, version: u32) -> Vec<Evicted> {
        let mut evicted = Vec::new();
        let size_b = size.as_bytes();
        if !self.capacity.is_unlimited() && size_b > self.capacity.as_bytes() {
            return evicted;
        }
        if let Some(&idx) = self.map.get(&key) {
            let e = &mut self.slots[idx as usize];
            self.used = self.used - e.size + size_b;
            e.size = size_b;
            e.version = e.version.max(version);
        } else {
            let idx = u32::try_from(self.slots.len()).expect("cache entries fit in u32");
            self.slots.push(Entry {
                key,
                size: size_b,
                version,
            });
            self.map.insert(key, idx);
            self.used += size_b;
        }
        if !self.capacity.is_unlimited() {
            while self.used > self.capacity.as_bytes() {
                debug_assert!(!self.slots.is_empty(), "over capacity with no entries");
                if self.slots.len() == 1 {
                    // Only the just-inserted key remains; keep it.
                    break;
                }
                let draw = self.next_draw();
                let mut victim = (draw % self.slots.len() as u64) as u32;
                if self.slots[victim as usize].key == key {
                    // Never evict the entry being inserted; take its
                    // deterministic neighbor instead of redrawing (a
                    // redraw loop has no termination bound).
                    victim = ((victim as usize + 1) % self.slots.len()) as u32;
                }
                evicted.push(self.remove_slot(victim));
            }
        }
        evicted
    }

    /// Removes `key` (e.g. on invalidation). Returns the removed entry.
    pub fn remove(&mut self, key: u64) -> Option<Evicted> {
        let idx = *self.map.get(&key)?;
        Some(self.remove_slot(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb(n: u64) -> ByteSize {
        ByteSize::from_kb(n)
    }

    #[test]
    fn insert_get_basic() {
        let mut c = RandomCache::new(kb(100), 1);
        assert!(c.is_empty());
        assert!(c.insert(1, kb(10), 0).is_empty());
        assert_eq!(c.get(1, 0), Some((kb(10), 0)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), kb(10));
        assert_eq!(c.get(2, 0), None);
    }

    #[test]
    fn eviction_is_deterministic_in_the_seed() {
        let run = |seed: u64| {
            let mut c = RandomCache::new(kb(30), seed);
            let mut all = Vec::new();
            for i in 0..20u64 {
                all.extend(c.insert(i, kb(10), 0).into_iter().map(|e| e.key));
            }
            all
        };
        assert_eq!(run(7), run(7), "same seed must evict the same victims");
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    #[test]
    fn never_evicts_the_inserted_key() {
        for seed in 0..32u64 {
            let mut c = RandomCache::new(kb(30), seed);
            for i in 0..100u64 {
                let ev = c.insert(i, kb(10), 0);
                assert!(ev.iter().all(|e| e.key != i), "seed {seed} evicted {i}");
                assert!(c.peek(i).is_some(), "seed {seed}: {i} must stay cached");
            }
        }
    }

    #[test]
    fn stale_version_invalidates_on_get() {
        let mut c = RandomCache::new(kb(100), 1);
        c.insert(1, kb(10), 1);
        assert_eq!(c.get(1, 1), Some((kb(10), 1)));
        assert_eq!(c.get(1, 2), None, "stale copy must not be served");
        assert!(c.peek(1).is_none(), "stale copy must be removed");
        assert_eq!(c.used_bytes(), ByteSize::ZERO);
    }

    #[test]
    fn refresh_updates_size_and_never_downgrades_version() {
        let mut c = RandomCache::new(kb(100), 1);
        c.insert(1, kb(10), 5);
        c.insert(1, kb(20), 2);
        assert_eq!(c.peek(1), Some((kb(20), 5)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), kb(20));
    }

    #[test]
    fn oversized_object_not_cached() {
        let mut c = RandomCache::new(kb(10), 1);
        c.insert(7, kb(11), 0);
        assert!(c.peek(7).is_none());
        assert_eq!(c.used_bytes(), ByteSize::ZERO);
    }

    #[test]
    fn unbounded_never_evicts() {
        let mut c = RandomCache::unbounded();
        for i in 0..10_000u64 {
            assert!(c.insert(i, kb(100), 0).is_empty());
        }
        assert_eq!(c.len(), 10_000);
    }

    #[test]
    fn remove_fixes_the_moved_slot() {
        let mut c = RandomCache::new(kb(100), 1);
        c.insert(1, kb(10), 0);
        c.insert(2, kb(10), 0);
        c.insert(3, kb(10), 0);
        let removed = c.remove(1).expect("present");
        assert_eq!(removed.key, 1);
        assert_eq!(c.remove(1), None);
        // Entry 3 was swap-moved into slot 0; it must still resolve.
        assert_eq!(c.peek(3), Some((kb(10), 0)));
        assert_eq!(c.len(), 2);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Insert(u64, u64, u32),
            Get(u64, u32),
            Remove(u64),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0u64..50, 1u64..20_000, 0u32..4).prop_map(|(k, s, v)| Op::Insert(k, s, v)),
                (0u64..50, 0u32..4).prop_map(|(k, v)| Op::Get(k, v)),
                (0u64..50).prop_map(Op::Remove),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Capacity, byte accounting, and map/slot consistency hold
            /// under arbitrary operation sequences (the LRU invariants,
            /// minus recency).
            #[test]
            fn invariants_hold(
                seed in 0u64..1_000,
                ops in proptest::collection::vec(op_strategy(), 1..300),
            ) {
                let cap = ByteSize::from_bytes(50_000);
                let mut c = RandomCache::new(cap, seed);
                for op in ops {
                    match op {
                        Op::Insert(k, s, v) => { c.insert(k, ByteSize::from_bytes(s), v); }
                        Op::Get(k, v) => { c.get(k, v); }
                        Op::Remove(k) => { c.remove(k); }
                    }
                    prop_assert!(c.used_bytes() <= cap);
                    let sum: u64 = c.slots.iter().map(|e| e.size).sum();
                    prop_assert_eq!(sum, c.used_bytes().as_bytes());
                    prop_assert_eq!(c.slots.len(), c.map.len());
                    for (i, e) in c.slots.iter().enumerate() {
                        prop_assert_eq!(c.map.get(&e.key).copied(), Some(i as u32));
                    }
                }
            }
        }
    }
}
