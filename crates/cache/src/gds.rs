//! GreedyDual-Size replacement (Cao & Irani, USENIX ITS 1997).
//!
//! The paper's contemporaries found that web caches should weigh object
//! *size* in replacement: evicting one large object can keep many small
//! ones, and request hit rate counts requests, not bytes. GreedyDual-Size
//! assigns each object a credit `H = L + cost/size` (we use uniform cost 1,
//! the request-hit-rate variant), refreshes `H` on every hit, evicts the
//! minimum-`H` object, and *inflates* `L` to the evicted credit so that
//! long-resident objects age out. The paper lists "more aggressive
//! techniques for using cache space" as future work (§2.2); this module
//! provides the era's standard candidate for the ablation in
//! `bh-bench --bin ablations`.

use bh_simcore::ByteSize;
use std::collections::{BTreeSet, HashMap};

/// An `f64` credit with a total order (no NaNs admitted).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Credit(f64);

impl Eq for Credit {}
impl PartialOrd for Credit {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Credit {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    size: u64,
    version: u32,
    credit: Credit,
}

/// A byte-capacity GreedyDual-Size cache with versioned entries — a
/// drop-in alternative to [`crate::LruCache`] for policy ablations.
#[derive(Debug, Clone)]
pub struct GdsCache {
    capacity: ByteSize,
    used: u64,
    entries: HashMap<u64, Entry>,
    /// Eviction order: (credit, key), smallest credit first.
    queue: BTreeSet<(Credit, u64)>,
    /// The inflation value L.
    inflation: f64,
}

impl GdsCache {
    /// Creates a cache with the given byte capacity
    /// ([`ByteSize::MAX`] = unlimited).
    pub fn new(capacity: ByteSize) -> Self {
        GdsCache {
            capacity,
            used: 0,
            entries: HashMap::new(),
            queue: BTreeSet::new(),
            inflation: 0.0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.used)
    }

    /// The current inflation value `L` (diagnostics).
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    fn credit_for(&self, size: u64) -> Credit {
        // Uniform cost 1: H = L + 1/size. Guard zero-size objects.
        Credit(self.inflation + 1.0 / size.max(1) as f64)
    }

    /// Looks up `key`, requiring at least `min_version`; refreshes the
    /// entry's credit on a hit. Stale entries are invalidated, as in
    /// [`crate::LruCache::get`].
    pub fn get(&mut self, key: u64, min_version: u32) -> Option<(ByteSize, u32)> {
        let entry = *self.entries.get(&key)?;
        if entry.version < min_version {
            self.remove(key);
            return None;
        }
        // Refresh credit: H = L + 1/size.
        let fresh = self.credit_for(entry.size);
        self.queue.remove(&(entry.credit, key));
        self.queue.insert((fresh, key));
        self.entries.get_mut(&key).expect("present").credit = fresh;
        Some((ByteSize::from_bytes(entry.size), entry.version))
    }

    /// Looks up without refreshing or invalidating.
    pub fn peek(&self, key: u64) -> Option<(ByteSize, u32)> {
        self.entries
            .get(&key)
            .map(|e| (ByteSize::from_bytes(e.size), e.version))
    }

    /// Inserts (or refreshes) `key`; evicts minimum-credit entries as
    /// needed. Returns the evicted keys.
    pub fn insert(&mut self, key: u64, size: ByteSize, version: u32) -> Vec<u64> {
        let mut evicted = Vec::new();
        let size_b = size.as_bytes();
        if !self.capacity.is_unlimited() && size_b > self.capacity.as_bytes() {
            return evicted;
        }
        if let Some(old) = self.entries.remove(&key) {
            self.queue.remove(&(old.credit, key));
            self.used -= old.size;
        }
        let credit = self.credit_for(size_b);
        self.entries.insert(
            key,
            Entry {
                size: size_b,
                version,
                credit,
            },
        );
        self.queue.insert((credit, key));
        self.used += size_b;

        if !self.capacity.is_unlimited() {
            while self.used > self.capacity.as_bytes() {
                let &(victim_credit, victim) = self
                    .queue
                    .iter()
                    .next()
                    .expect("over capacity implies entries");
                if victim == key && self.entries.len() == 1 {
                    break;
                }
                // Inflate L to the evicted credit — GreedyDual's aging.
                self.inflation = victim_credit.0;
                self.queue.remove(&(victim_credit, victim));
                let e = self
                    .entries
                    .remove(&victim)
                    .expect("queued implies present");
                self.used -= e.size;
                if victim != key {
                    evicted.push(victim);
                }
            }
        }
        evicted
    }

    /// Removes `key`; returns whether it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        match self.entries.remove(&key) {
            Some(e) => {
                self.queue.remove(&(e.credit, key));
                self.used -= e.size;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb(n: u64) -> ByteSize {
        ByteSize::from_kb(n)
    }

    #[test]
    fn basic_insert_get() {
        let mut c = GdsCache::new(kb(100));
        c.insert(1, kb(10), 0);
        assert_eq!(c.get(1, 0), Some((kb(10), 0)));
        assert_eq!(c.get(2, 0), None);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), kb(10));
    }

    #[test]
    fn prefers_evicting_large_objects() {
        let mut c = GdsCache::new(kb(100));
        c.insert(1, kb(64), 0); // big → low credit
        c.insert(2, kb(1), 0); // small → high credit
        c.insert(3, kb(1), 0);
        let evicted = c.insert(4, kb(40), 0); // overflow
        assert_eq!(evicted, vec![1], "the large cold object goes first");
        assert!(c.peek(2).is_some());
        assert!(c.peek(3).is_some());
    }

    #[test]
    fn hits_refresh_credit() {
        let mut c = GdsCache::new(kb(66));
        c.insert(1, kb(64), 0);
        c.insert(2, kb(1), 0);
        // Age the cache: force an eviction so L inflates.
        let ev = c.insert(3, kb(64), 0);
        assert_eq!(ev, vec![1]);
        // Keep hitting object 2; it must survive the next big insert.
        for _ in 0..3 {
            assert!(c.get(2, 0).is_some());
        }
        let ev = c.insert(4, kb(64), 0);
        assert_eq!(ev, vec![3], "hot small object outlives cold big one");
        assert!(c.peek(2).is_some());
    }

    #[test]
    fn version_semantics_match_lru() {
        let mut c = GdsCache::new(kb(100));
        c.insert(1, kb(10), 1);
        assert_eq!(c.get(1, 2), None, "stale copy invalidated");
        assert!(c.peek(1).is_none());
        assert_eq!(c.used_bytes(), ByteSize::ZERO);
    }

    #[test]
    fn oversized_object_not_cached() {
        let mut c = GdsCache::new(kb(10));
        assert!(c.insert(1, kb(20), 0).is_empty());
        assert!(c.peek(1).is_none());
    }

    #[test]
    fn inflation_monotone() {
        let mut c = GdsCache::new(kb(4));
        let mut last = 0.0;
        for k in 0..50u64 {
            c.insert(k, kb(2), 0);
            assert!(c.inflation() >= last);
            last = c.inflation();
        }
        assert!(last > 0.0, "evictions must inflate L");
    }

    #[test]
    fn gds_beats_lru_on_request_hit_rate_with_mixed_sizes() {
        // The classic result: with heavy-tailed sizes and uniform cost,
        // GreedyDual-Size buys request hit rate by caching many small
        // objects instead of a few big ones.
        use crate::lru::LruCache;
        use bh_simcore::rng::{Xoshiro256, Zipf};

        let capacity = ByteSize::from_kb(512);
        let mut gds = GdsCache::new(capacity);
        let mut lru = LruCache::new(capacity);
        let zipf = Zipf::new(4_000, 0.9);
        let mut rng = Xoshiro256::seed_from_u64(17);
        let size_of = |obj: u64| {
            // Deterministic heavy-tailed sizes: 1 KB to 512 KB.
            let mut h = bh_simcore::rng::SplitMix64::new(obj);
            ByteSize::from_bytes(1024 << (h.next_u64() % 10))
        };
        let (mut gds_hits, mut lru_hits, mut total) = (0u64, 0u64, 0u64);
        for _ in 0..60_000 {
            let obj = zipf.sample(&mut rng) + 1;
            let size = size_of(obj);
            total += 1;
            if gds.get(obj, 0).is_some() {
                gds_hits += 1;
            } else {
                gds.insert(obj, size, 0);
            }
            if lru.get(obj, 0).is_some() {
                lru_hits += 1;
            } else {
                lru.insert(obj, size, 0);
            }
        }
        let g = gds_hits as f64 / total as f64;
        let l = lru_hits as f64 / total as f64;
        assert!(
            g > l,
            "GreedyDual-Size ({g:.3}) should beat LRU ({l:.3}) on request hit rate"
        );
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Capacity and byte accounting hold under arbitrary sequences.
            #[test]
            fn invariants(ops in proptest::collection::vec(
                (0u64..40, 1u64..30_000, 0u32..3, 0u8..3), 1..300)) {
                let cap = ByteSize::from_bytes(60_000);
                let mut c = GdsCache::new(cap);
                for (key, size, version, op) in ops {
                    match op {
                        0 => { c.insert(key, ByteSize::from_bytes(size), version); }
                        1 => { c.get(key, version); }
                        _ => { c.remove(key); }
                    }
                    prop_assert!(c.used_bytes() <= cap);
                    let sum: u64 = (0..40u64)
                        .filter_map(|k| c.peek(k).map(|(s, _)| s.as_bytes()))
                        .sum();
                    prop_assert_eq!(sum, c.used_bytes().as_bytes());
                }
            }
        }
    }
}
