//! Miss classification — the taxonomy of Figure 2.
//!
//! For each request to a shared cache, the outcome is classified as:
//!
//! * **hit** — fresh copy present;
//! * **compulsory** — first access to the object by *anyone* behind this
//!   cache;
//! * **communication** — the object was cached but has been invalidated by
//!   an update (stored version < requested version);
//! * **capacity** — the object was cached but was discarded to make space;
//! * **uncachable** — the request must contact the server (non-GET, CGI,
//!   cache-control);
//! * **error** — the request draws an error reply.
//!
//! [`ClassifyingCache`] wraps an [`LruCache`] and keeps the tombstone
//! state needed to distinguish capacity from communication misses.

use crate::lru::LruCache;
use bh_simcore::ByteSize;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::HashMap;

/// Why a request missed (or that it hit).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MissClass {
    /// Served from cache.
    Hit,
    /// First access to this object through this cache.
    Compulsory,
    /// Cached copy was invalidated by an update.
    Communication,
    /// Cached copy was evicted for space.
    Capacity,
    /// Request may not be served from cache.
    Uncachable,
    /// Request produced an error reply.
    Error,
}

impl MissClass {
    /// All classes, in Figure 2's legend order.
    pub const ALL: [MissClass; 6] = [
        MissClass::Hit,
        MissClass::Compulsory,
        MissClass::Capacity,
        MissClass::Communication,
        MissClass::Error,
        MissClass::Uncachable,
    ];

    /// Number of classes (the length of [`MissClass::ALL`]).
    pub const COUNT: usize = 6;

    /// Whether this is any kind of miss.
    pub fn is_miss(self) -> bool {
        self != MissClass::Hit
    }

    /// A dense index in `0..MissClass::COUNT`, stable across runs — used to
    /// address per-class counter arrays without hashing.
    pub const fn index(self) -> usize {
        match self {
            MissClass::Hit => 0,
            MissClass::Compulsory => 1,
            MissClass::Communication => 2,
            MissClass::Capacity => 3,
            MissClass::Uncachable => 4,
            MissClass::Error => 5,
        }
    }

    /// The class's lowercase name as it appears in figures and JSON.
    pub const fn label(self) -> &'static str {
        match self {
            MissClass::Hit => "hit",
            MissClass::Compulsory => "compulsory",
            MissClass::Communication => "communication",
            MissClass::Capacity => "capacity",
            MissClass::Uncachable => "uncachable",
            MissClass::Error => "error",
        }
    }

    /// The class with the given [`MissClass::label`], if any.
    pub fn from_label(label: &str) -> Option<MissClass> {
        MissClass::ALL.iter().copied().find(|c| c.label() == label)
    }
}

impl std::fmt::Display for MissClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A per-class rate table: one `f64` per [`MissClass`], addressed by
/// [`MissClass::index`] instead of a heap-allocated name/value list.
///
/// Serializes exactly like the historical `Vec<(String, f64)>` form — an
/// array of `["name", value]` pairs in [`MissClass::ALL`] (legend) order —
/// so JSON artifacts are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassRates([f64; MissClass::COUNT]);

impl ClassRates {
    /// Builds a table by evaluating `f` for every class.
    pub fn from_fn(mut f: impl FnMut(MissClass) -> f64) -> Self {
        let mut rates = [0.0; MissClass::COUNT];
        for class in MissClass::ALL {
            rates[class.index()] = f(class);
        }
        ClassRates(rates)
    }

    /// The rate for `class`.
    pub fn get(&self, class: MissClass) -> f64 {
        self.0[class.index()]
    }

    /// Sets the rate for `class`.
    pub fn set(&mut self, class: MissClass, rate: f64) {
        self.0[class.index()] = rate;
    }

    /// Looks a rate up by class name (`"hit"`, `"capacity"`, …).
    pub fn by_name(&self, name: &str) -> Option<f64> {
        MissClass::from_label(name).map(|c| self.get(c))
    }

    /// Iterates `(class, rate)` pairs in [`MissClass::ALL`] (legend) order.
    pub fn iter(&self) -> impl Iterator<Item = (MissClass, f64)> + '_ {
        MissClass::ALL.into_iter().map(|c| (c, self.get(c)))
    }

    /// Sum of all class rates (≈ 1.0 for a complete breakdown).
    pub fn sum(&self) -> f64 {
        self.0.iter().sum()
    }
}

impl Serialize for ClassRates {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(class, rate)| {
                    Value::Array(vec![
                        Value::Str(class.label().to_string()),
                        Value::Float(rate),
                    ])
                })
                .collect(),
        )
    }
}

impl Deserialize for ClassRates {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let Value::Array(items) = v else {
            return Err(DeError(
                "ClassRates: expected array of [name, rate] pairs".into(),
            ));
        };
        let mut rates = ClassRates::default();
        for item in items {
            let Value::Array(pair) = item else {
                return Err(DeError("ClassRates: expected [name, rate] pair".into()));
            };
            let [name, rate] = pair.as_slice() else {
                return Err(DeError("ClassRates: pair must have two elements".into()));
            };
            let Value::Str(name) = name else {
                return Err(DeError("ClassRates: pair name must be a string".into()));
            };
            let class = MissClass::from_label(name)
                .ok_or_else(|| DeError(format!("ClassRates: unknown class {name:?}")))?;
            rates.set(class, f64::deserialize(rate)?);
        }
        Ok(rates)
    }
}

/// The outcome of one classified access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The classification.
    pub class: MissClass,
    /// Bytes transferred to the client (the object size).
    pub bytes: ByteSize,
}

/// What we remember about an object no longer (or not currently fresh) in
/// the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Gone {
    Evicted,
    Invalidated,
}

/// An [`LruCache`] wrapper that classifies every access per Figure 2.
///
/// ```
/// use bh_cache::{ClassifyingCache, MissClass};
/// use bh_simcore::ByteSize;
///
/// let mut c = ClassifyingCache::new(ByteSize::from_mb(1));
/// let first = c.access(1, ByteSize::from_kb(10), 0, true);
/// assert_eq!(first.class, MissClass::Compulsory);
/// let second = c.access(1, ByteSize::from_kb(10), 0, true);
/// assert_eq!(second.class, MissClass::Hit);
/// let updated = c.access(1, ByteSize::from_kb(10), 1, true);
/// assert_eq!(updated.class, MissClass::Communication);
/// ```
#[derive(Debug, Clone)]
pub struct ClassifyingCache {
    cache: LruCache,
    gone: HashMap<u64, Gone>,
    counts: [u64; MissClass::COUNT],
    bytes: [u64; MissClass::COUNT],
}

impl ClassifyingCache {
    /// Creates a classifier over a cache of the given capacity.
    pub fn new(capacity: ByteSize) -> Self {
        ClassifyingCache {
            cache: LruCache::new(capacity),
            gone: HashMap::new(),
            counts: [0; MissClass::COUNT],
            bytes: [0; MissClass::COUNT],
        }
    }

    /// Processes one access and classifies it.
    ///
    /// `cacheable = false` marks uncachable requests; pass error requests as
    /// uncachable with [`ClassifyingCache::access_error`] instead.
    pub fn access(
        &mut self,
        key: u64,
        size: ByteSize,
        version: u32,
        cacheable: bool,
    ) -> AccessOutcome {
        let class = self.classify(key, size, version, cacheable);
        self.counts[class.index()] += 1;
        self.bytes[class.index()] += size.as_bytes();
        AccessOutcome { class, bytes: size }
    }

    /// Processes an error request (never cached, classified [`MissClass::Error`]).
    pub fn access_error(&mut self, size: ByteSize) -> AccessOutcome {
        self.counts[MissClass::Error.index()] += 1;
        self.bytes[MissClass::Error.index()] += size.as_bytes();
        AccessOutcome {
            class: MissClass::Error,
            bytes: size,
        }
    }

    fn classify(&mut self, key: u64, size: ByteSize, version: u32, cacheable: bool) -> MissClass {
        if !cacheable {
            // Uncachable requests bypass the cache entirely; they neither
            // hit nor warm it, and they do not change tombstone state.
            return MissClass::Uncachable;
        }
        if let Some((_, v)) = self.cache.peek(key) {
            if v >= version {
                let _ = self.cache.get(key, version); // promote
                return MissClass::Hit;
            }
            // Stale in cache: invalidate and re-fetch.
            self.cache.remove(key);
            self.insert_tracking_evictions(key, size, version);
            return MissClass::Communication;
        }
        let class = match self.gone.get(&key) {
            None => MissClass::Compulsory,
            Some(Gone::Evicted) => MissClass::Capacity,
            Some(Gone::Invalidated) => MissClass::Communication,
        };
        self.gone.remove(&key);
        self.insert_tracking_evictions(key, size, version);
        class
    }

    fn insert_tracking_evictions(&mut self, key: u64, size: ByteSize, version: u32) {
        let evicted = self.cache.insert(key, size, version);
        for e in evicted {
            self.gone.insert(e.key, Gone::Evicted);
        }
        if self.cache.peek(key).is_none() {
            // Object too large to cache at all: next access is a capacity miss.
            self.gone.insert(key, Gone::Evicted);
        }
    }

    /// Explicitly invalidates an object (server-driven consistency): the
    /// next access classifies as a communication miss.
    pub fn invalidate(&mut self, key: u64) {
        if self.cache.remove(key).is_some() || self.gone.contains_key(&key) {
            self.gone.insert(key, Gone::Invalidated);
        }
    }

    /// Per-class access counts so far.
    pub fn count(&self, class: MissClass) -> u64 {
        self.counts[class.index()]
    }

    /// Per-class byte totals so far.
    pub fn bytes(&self, class: MissClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Total accesses classified.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total bytes classified.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Fraction of accesses in `class`.
    pub fn rate(&self, class: MissClass) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.count(class) as f64 / t as f64
        }
    }

    /// Fraction of bytes in `class`.
    pub fn byte_rate(&self, class: MissClass) -> f64 {
        let t = self.total_bytes();
        if t == 0 {
            0.0
        } else {
            self.bytes(class) as f64 / t as f64
        }
    }

    /// Overall miss ratio (all classes except [`MissClass::Hit`]).
    pub fn miss_ratio(&self) -> f64 {
        1.0 - self.rate(MissClass::Hit)
    }

    /// The full per-class access-rate table (each entry from
    /// [`ClassifyingCache::rate`]).
    pub fn rates(&self) -> ClassRates {
        ClassRates::from_fn(|class| self.rate(class))
    }

    /// The full per-class byte-rate table (each entry from
    /// [`ClassifyingCache::byte_rate`]).
    pub fn byte_rates(&self) -> ClassRates {
        ClassRates::from_fn(|class| self.byte_rate(class))
    }

    /// Resets the per-class counters (the cache and tombstones are kept) —
    /// used at the end of the warm-up window.
    pub fn reset_counters(&mut self) {
        self.counts = [0; MissClass::COUNT];
        self.bytes = [0; MissClass::COUNT];
    }

    /// The wrapped cache.
    pub fn cache(&self) -> &LruCache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb(n: u64) -> ByteSize {
        ByteSize::from_kb(n)
    }

    #[test]
    fn first_access_is_compulsory_then_hits() {
        let mut c = ClassifyingCache::new(kb(100));
        assert_eq!(c.access(1, kb(10), 0, true).class, MissClass::Compulsory);
        assert_eq!(c.access(1, kb(10), 0, true).class, MissClass::Hit);
        assert_eq!(c.count(MissClass::Compulsory), 1);
        assert_eq!(c.count(MissClass::Hit), 1);
    }

    #[test]
    fn version_bump_is_communication_miss() {
        let mut c = ClassifyingCache::new(kb(100));
        c.access(1, kb(10), 0, true);
        assert_eq!(c.access(1, kb(10), 2, true).class, MissClass::Communication);
        // The re-fetched copy is fresh now.
        assert_eq!(c.access(1, kb(10), 2, true).class, MissClass::Hit);
    }

    #[test]
    fn eviction_then_reaccess_is_capacity_miss() {
        let mut c = ClassifyingCache::new(kb(20));
        c.access(1, kb(10), 0, true);
        c.access(2, kb(10), 0, true);
        c.access(3, kb(10), 0, true); // evicts 1
        assert_eq!(c.access(1, kb(10), 0, true).class, MissClass::Capacity);
    }

    #[test]
    fn explicit_invalidate_reclassifies() {
        let mut c = ClassifyingCache::new(kb(100));
        c.access(1, kb(10), 0, true);
        c.invalidate(1);
        assert_eq!(c.access(1, kb(10), 0, true).class, MissClass::Communication);
    }

    #[test]
    fn invalidate_unknown_object_is_noop() {
        let mut c = ClassifyingCache::new(kb(100));
        c.invalidate(42);
        assert_eq!(c.access(42, kb(1), 0, true).class, MissClass::Compulsory);
    }

    #[test]
    fn uncachable_never_warms_cache() {
        let mut c = ClassifyingCache::new(kb(100));
        assert_eq!(c.access(1, kb(10), 0, false).class, MissClass::Uncachable);
        assert_eq!(c.access(1, kb(10), 0, false).class, MissClass::Uncachable);
        // A later cacheable access is still the first *cacheable* one.
        assert_eq!(c.access(1, kb(10), 0, true).class, MissClass::Compulsory);
    }

    #[test]
    fn error_requests_tracked_separately() {
        let mut c = ClassifyingCache::new(kb(100));
        c.access_error(kb(5));
        assert_eq!(c.count(MissClass::Error), 1);
        assert_eq!(c.bytes(MissClass::Error), kb(5).as_bytes());
    }

    #[test]
    fn oversized_objects_classify_as_capacity_on_reaccess() {
        let mut c = ClassifyingCache::new(kb(10));
        assert_eq!(c.access(1, kb(50), 0, true).class, MissClass::Compulsory);
        assert_eq!(c.access(1, kb(50), 0, true).class, MissClass::Capacity);
    }

    #[test]
    fn rates_sum_to_one() {
        let mut c = ClassifyingCache::new(kb(30));
        for (k, v, cacheable) in [
            (1, 0, true),
            (2, 0, true),
            (1, 0, true),
            (3, 1, true),
            (4, 0, false),
            (1, 1, true),
        ] {
            c.access(k, kb(10), v, cacheable);
        }
        c.access_error(kb(1));
        let total: f64 = MissClass::ALL.iter().map(|&cl| c.rate(cl)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let total_b: f64 = MissClass::ALL.iter().map(|&cl| c.byte_rate(cl)).sum();
        assert!((total_b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn infinite_cache_has_no_capacity_misses() {
        let mut c = ClassifyingCache::new(ByteSize::MAX);
        let mut state = 1u64;
        for i in 0..5_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = state % 500 + 1;
            c.access(key, kb(10), (i / 2000) as u32, true);
        }
        assert_eq!(c.count(MissClass::Capacity), 0);
        assert!(c.count(MissClass::Hit) > 0);
        assert!(c.count(MissClass::Communication) > 0);
    }

    #[test]
    fn reset_counters_keeps_cache_state() {
        let mut c = ClassifyingCache::new(kb(100));
        c.access(1, kb(10), 0, true);
        c.reset_counters();
        assert_eq!(c.total(), 0);
        // Still a hit: the cache was not cleared.
        assert_eq!(c.access(1, kb(10), 0, true).class, MissClass::Hit);
    }

    #[test]
    fn miss_ratio_consistent() {
        let mut c = ClassifyingCache::new(kb(100));
        c.access(1, kb(10), 0, true);
        c.access(1, kb(10), 0, true);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }
}
