//! The Rousskov Squid-measurement cost model (§2.1.2, Table 3).
//!
//! Rousskov measured deployed Squid caches and broke hit response time into
//! three components per level: *client connect* (accept → parsed request),
//! *disk* (swap-in), and *proxy reply* (send data back). The paper derives
//! from those the total time to reach each level hierarchically, directly,
//! or via the L1 proxy, in Min (lightly loaded) and Max (peak) variants —
//! and this module reproduces those derivations exactly:
//!
//! * hierarchical to level *k*: Σ (connect + reply) for levels 1..k, plus
//!   disk at level *k*; a miss additionally pays the root's server wait;
//! * client direct to level *k*: connect + disk + reply at *k* alone;
//! * via L1: L1's connect + reply, plus the direct cost at *k*.
//!
//! These medians are size-independent (they aggregate real mixed traffic),
//! which is faithful to how the paper uses them in Figure 8.

use crate::model::{CostModel, Level, RemoteDistance};
use bh_simcore::{ByteSize, SimDuration};
use serde::{Deserialize, Serialize};

/// Component times for one cache level, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelComponents {
    /// "Client connect": accept() returns → parsable HTTP request.
    pub connect_ms: f64,
    /// "Disk": swap the object in from disk.
    pub disk_ms: f64,
    /// "Proxy reply": send the data back.
    pub reply_ms: f64,
}

impl LevelComponents {
    /// Direct access total: connect + disk + reply.
    pub fn direct_ms(&self) -> f64 {
        self.connect_ms + self.disk_ms + self.reply_ms
    }

    /// The per-traversal cost this level adds when it merely forwards
    /// (connect + reply, no disk).
    pub fn forward_ms(&self) -> f64 {
        self.connect_ms + self.reply_ms
    }
}

/// The Rousskov model: per-level components plus the root's miss wait.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RousskovModel {
    label: String,
    /// Components for [leaf, intermediate, root].
    pub levels: [LevelComponents; 3],
    /// Time the root proxy spends connecting to and receiving from the
    /// origin server on a miss (Table 3's "Miss" row).
    pub miss_ms: f64,
}

impl RousskovModel {
    /// Table 3's **Min** column: minima of the peak-hour 20-minute medians.
    pub fn min() -> Self {
        RousskovModel {
            label: "Min".to_string(),
            levels: [
                LevelComponents {
                    connect_ms: 16.0,
                    disk_ms: 72.0,
                    reply_ms: 75.0,
                },
                LevelComponents {
                    connect_ms: 50.0,
                    disk_ms: 60.0,
                    reply_ms: 70.0,
                },
                LevelComponents {
                    connect_ms: 100.0,
                    disk_ms: 100.0,
                    reply_ms: 120.0,
                },
            ],
            miss_ms: 550.0,
        }
    }

    /// Table 3's **Max** column: maxima of the peak-hour 20-minute medians.
    pub fn max() -> Self {
        RousskovModel {
            label: "Max".to_string(),
            levels: [
                LevelComponents {
                    connect_ms: 62.0,
                    disk_ms: 135.0,
                    reply_ms: 155.0,
                },
                LevelComponents {
                    connect_ms: 550.0,
                    disk_ms: 950.0,
                    reply_ms: 1050.0,
                },
                LevelComponents {
                    connect_ms: 1200.0,
                    disk_ms: 650.0,
                    reply_ms: 1000.0,
                },
            ],
            miss_ms: 3200.0,
        }
    }

    fn comp(&self, level: Level) -> &LevelComponents {
        &self.levels[level.depth() - 1]
    }

    /// "Total Hierarchical" column of Table 3 for a hit at `level`, ms:
    /// every traversed level contributes connect + reply, and the supplying
    /// level additionally contributes its disk swap-in.
    pub fn total_hierarchical_ms(&self, level: Level) -> f64 {
        self.levels[..level.depth()]
            .iter()
            .map(|c| c.forward_ms())
            .sum::<f64>()
            + self.comp(level).disk_ms
    }

    /// "Total Hierarchical" for a full miss (traverse all levels + server), ms.
    pub fn total_hierarchical_miss_ms(&self) -> f64 {
        self.levels.iter().map(|c| c.forward_ms()).sum::<f64>() + self.miss_ms
    }

    /// "Total Client Direct" column of Table 3 for `level`, ms.
    pub fn total_direct_ms(&self, level: Level) -> f64 {
        self.comp(level).direct_ms()
    }

    /// "Total via L1" column of Table 3 for `level`, ms.
    pub fn total_via_l1_ms(&self, level: Level) -> f64 {
        if level == Level::L1 {
            self.total_direct_ms(level)
        } else {
            self.comp(Level::L1).forward_ms() + self.total_direct_ms(level)
        }
    }

    /// Direct miss to the server ("Total Client Direct", Miss row), ms.
    pub fn direct_miss_ms(&self) -> f64 {
        self.miss_ms
    }

    /// Via-L1 miss to the server ("Total via L1", Miss row), ms.
    pub fn via_l1_miss_ms(&self) -> f64 {
        self.comp(Level::L1).forward_ms() + self.miss_ms
    }
}

impl CostModel for RousskovModel {
    fn hierarchy_hit(&self, level: Level, _size: ByteSize) -> SimDuration {
        SimDuration::from_millis_f64(self.total_hierarchical_ms(level))
    }

    fn hierarchy_miss(&self, _size: ByteSize) -> SimDuration {
        SimDuration::from_millis_f64(self.total_hierarchical_miss_ms())
    }

    fn remote_fetch(&self, distance: RemoteDistance, _size: ByteSize) -> SimDuration {
        // A peer at L2/L3 distance costs what direct access to an
        // intermediate/root cache costs, reached via our L1.
        let level = match distance {
            RemoteDistance::SameL2 => Level::L2,
            RemoteDistance::SameL3 => Level::L3,
        };
        SimDuration::from_millis_f64(self.total_via_l1_ms(level))
    }

    fn server_fetch(&self, _size: ByteSize) -> SimDuration {
        SimDuration::from_millis_f64(self.via_l1_miss_ms())
    }

    fn false_positive_penalty(&self, distance: RemoteDistance) -> SimDuration {
        // Round trip without the data transfer: connect + an error reply
        // (priced as connect alone; the reply carries no payload).
        let level = match distance {
            RemoteDistance::SameL2 => Level::L2,
            RemoteDistance::SameL3 => Level::L3,
        };
        SimDuration::from_millis_f64(self.comp(level).connect_ms)
    }

    fn directory_lookup(&self) -> SimDuration {
        // Directory at root distance: a payload-free round trip.
        SimDuration::from_millis_f64(self.comp(Level::L3).connect_ms)
    }

    fn remote_fetch_from_client(&self, distance: RemoteDistance, _size: ByteSize) -> SimDuration {
        let level = match distance {
            RemoteDistance::SameL2 => Level::L2,
            RemoteDistance::SameL3 => Level::L3,
        };
        SimDuration::from_millis_f64(self.total_direct_ms(level))
    }

    fn server_fetch_from_client(&self, _size: ByteSize) -> SimDuration {
        SimDuration::from_millis_f64(self.direct_miss_ms())
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ANY: ByteSize = ByteSize::from_kb(8);

    /// Table 3, "Total Hierarchical" column.
    #[test]
    fn table3_total_hierarchical() {
        let min = RousskovModel::min();
        assert_eq!(min.total_hierarchical_ms(Level::L1), 163.0);
        assert_eq!(min.total_hierarchical_ms(Level::L2), 271.0);
        assert_eq!(min.total_hierarchical_ms(Level::L3), 531.0);
        assert_eq!(min.total_hierarchical_miss_ms(), 981.0);

        let max = RousskovModel::max();
        assert_eq!(max.total_hierarchical_ms(Level::L1), 352.0);
        assert_eq!(max.total_hierarchical_ms(Level::L2), 2767.0);
        assert_eq!(max.total_hierarchical_ms(Level::L3), 4667.0);
        assert_eq!(max.total_hierarchical_miss_ms(), 7217.0);
    }

    /// Table 3, "Total Client Direct" column.
    #[test]
    fn table3_total_direct() {
        let min = RousskovModel::min();
        assert_eq!(min.total_direct_ms(Level::L1), 163.0);
        assert_eq!(min.total_direct_ms(Level::L2), 180.0);
        assert_eq!(min.total_direct_ms(Level::L3), 320.0);
        assert_eq!(min.direct_miss_ms(), 550.0);

        let max = RousskovModel::max();
        assert_eq!(max.total_direct_ms(Level::L1), 352.0);
        assert_eq!(max.total_direct_ms(Level::L2), 2550.0);
        assert_eq!(max.total_direct_ms(Level::L3), 2850.0);
        assert_eq!(max.direct_miss_ms(), 3200.0);
    }

    /// Table 3, "Total via L1" column.
    #[test]
    fn table3_total_via_l1() {
        let min = RousskovModel::min();
        assert_eq!(min.total_via_l1_ms(Level::L1), 163.0);
        assert_eq!(min.total_via_l1_ms(Level::L2), 271.0);
        assert_eq!(min.total_via_l1_ms(Level::L3), 411.0);
        assert_eq!(min.via_l1_miss_ms(), 641.0);

        let max = RousskovModel::max();
        assert_eq!(max.total_via_l1_ms(Level::L1), 352.0);
        assert_eq!(max.total_via_l1_ms(Level::L2), 2767.0);
        assert_eq!(max.total_via_l1_ms(Level::L3), 3067.0);
        assert_eq!(max.via_l1_miss_ms(), 3417.0);
    }

    #[test]
    fn cost_model_trait_matches_derivations() {
        let m = RousskovModel::min();
        assert_eq!(m.hierarchy_hit(Level::L3, ANY).as_millis_f64(), 531.0);
        assert_eq!(m.hierarchy_miss(ANY).as_millis_f64(), 981.0);
        assert_eq!(
            m.remote_fetch(RemoteDistance::SameL3, ANY).as_millis_f64(),
            411.0
        );
        assert_eq!(m.server_fetch(ANY).as_millis_f64(), 641.0);
        assert_eq!(
            m.remote_fetch_from_client(RemoteDistance::SameL2, ANY)
                .as_millis_f64(),
            180.0
        );
        assert_eq!(m.server_fetch_from_client(ANY).as_millis_f64(), 550.0);
    }

    #[test]
    fn size_independent() {
        let m = RousskovModel::max();
        assert_eq!(
            m.hierarchy_hit(Level::L2, ByteSize::from_kb(1)),
            m.hierarchy_hit(Level::L2, ByteSize::from_kb(1024))
        );
    }

    #[test]
    fn names() {
        assert_eq!(RousskovModel::min().name(), "Min");
        assert_eq!(RousskovModel::max().name(), "Max");
    }

    #[test]
    fn paper_observation_leaf_direct_twice_as_fast_as_root_min() {
        // §2.1.2: "directly accessing a leaf cache during periods of low
        // load costs 163 ms which is twice as fast as the 320 ms cost of
        // directly accessing a top level cache."
        let m = RousskovModel::min();
        let leaf = m.total_direct_ms(Level::L1);
        let root = m.total_direct_ms(Level::L3);
        assert!((root / leaf - 2.0).abs() < 0.05);
    }
}
