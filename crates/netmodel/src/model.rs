//! The cost-model interface the strategy simulator prices requests against.

use bh_simcore::{ByteSize, SimDuration};
use serde::{Deserialize, Serialize};

/// A level of the three-level default hierarchy (§2.2.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Level {
    /// Leaf proxy shared by 256 clients.
    L1,
    /// Intermediate proxy shared by 8 L1s (2048 clients).
    L2,
    /// Root proxy shared by everyone.
    L3,
}

impl Level {
    /// All levels, leaf to root.
    pub const ALL: [Level; 3] = [Level::L1, Level::L2, Level::L3];

    /// 1-based depth (L1 → 1).
    pub fn depth(self) -> usize {
        match self {
            Level::L1 => 1,
            Level::L2 => 2,
            Level::L3 => 3,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Level::L1 => "L1",
            Level::L2 => "L2",
            Level::L3 => "L3",
        };
        f.write_str(s)
    }
}

/// How far away a remote *peer* cache is, measured by the least common
/// ancestor in the hierarchy: a cousin under the same L2 is "as far away as
/// an L2 cache"; one only reachable under the L3 root is "as far away as an
/// L3 cache" (the paper's §4 phrasing).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum RemoteDistance {
    /// Remote cache shares our L2 parent.
    SameL2,
    /// Remote cache only shares the L3 root.
    SameL3,
}

impl std::fmt::Display for RemoteDistance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RemoteDistance::SameL2 => "L2-distance",
            RemoteDistance::SameL3 => "L3-distance",
        };
        f.write_str(s)
    }
}

/// Prices every access path a strategy can take.
///
/// All paths start at the client. "Via L1" paths (the default hint
/// configuration, Figure 4-a) include the client's hop to its L1 proxy; the
/// "from client" variants model the alternate configuration (Figure 4-b)
/// where the client consults its own hint cache and skips the L1 proxy.
pub trait CostModel: Send + Sync {
    /// Fetch through the data hierarchy with a hit at `level`
    /// (request and data traverse every level up to `level`).
    fn hierarchy_hit(&self, level: Level, size: ByteSize) -> SimDuration;

    /// Fetch through the whole data hierarchy, missing everywhere, served by
    /// the origin server through the hierarchy.
    fn hierarchy_miss(&self, size: ByteSize) -> SimDuration;

    /// Client → own L1 → remote peer cache at `distance`; data comes
    /// straight back (one cache-to-cache hop, §3).
    fn remote_fetch(&self, distance: RemoteDistance, size: ByteSize) -> SimDuration;

    /// Client → own L1 → origin server directly (hint miss detected
    /// locally; "do not slow down misses").
    fn server_fetch(&self, size: ByteSize) -> SimDuration;

    /// Wasted round trip for a false-positive hint: the remote cache at
    /// `distance` replies with an error and no data; the requester then
    /// proceeds to the server separately.
    fn false_positive_penalty(&self, distance: RemoteDistance) -> SimDuration;

    /// Round trip to query a far-away centralized directory (the CRISP-like
    /// baseline keeps its directory at L3-root distance).
    fn directory_lookup(&self) -> SimDuration;

    /// Remote fetch in the alternate, client-level hint configuration
    /// (Figure 4-b): the L1 hop is skipped. Defaults to the via-L1 price
    /// minus nothing — models without a separable L1 leg may override.
    fn remote_fetch_from_client(&self, distance: RemoteDistance, size: ByteSize) -> SimDuration {
        self.remote_fetch(distance, size)
    }

    /// Server fetch in the alternate, client-level hint configuration.
    fn server_fetch_from_client(&self, size: ByteSize) -> SimDuration {
        self.server_fetch(size)
    }

    /// Short human-readable name ("Testbed", "Min", "Max").
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_depths_ordered() {
        assert_eq!(Level::L1.depth(), 1);
        assert_eq!(Level::L2.depth(), 2);
        assert_eq!(Level::L3.depth(), 3);
        assert!(Level::L1 < Level::L2 && Level::L2 < Level::L3);
    }

    #[test]
    fn display_strings() {
        assert_eq!(Level::L2.to_string(), "L2");
        assert_eq!(RemoteDistance::SameL2.to_string(), "L2-distance");
        assert_eq!(RemoteDistance::SameL3.to_string(), "L3-distance");
    }
}
