//! Internet access-cost models for the Beyond Hierarchies simulator.
//!
//! The paper parameterizes its simulations with measured access times from
//! two sources, and so do we:
//!
//! * [`TestbedModel`] — the wide-area testbed of §2.1.1 (Figure 1): a
//!   store-and-forward hierarchy where every proxy hop adds connection
//!   setup, proxy processing, and a full object transfer, so cost grows
//!   with both hop count and object size;
//! * [`RousskovModel`] — Rousskov's measurements of deployed Squid caches
//!   (§2.1.2, Table 3): per-level client-connect / disk / proxy-reply
//!   component times, in *Min* (lightly loaded) and *Max* (peak 20-minute
//!   median) variants, with the paper's exact derivation of hierarchical,
//!   client-direct, and via-L1 totals.
//!
//! Both implement [`CostModel`], the single interface the strategy
//! simulator prices request outcomes against.
//!
//! # Examples
//!
//! ```
//! use bh_netmodel::{CostModel, Level, RousskovModel, TestbedModel};
//! use bh_simcore::ByteSize;
//!
//! let testbed = TestbedModel::new();
//! let size = ByteSize::from_kb(8);
//! // Store-and-forward makes deep hits much slower than local ones.
//! assert!(testbed.hierarchy_hit(Level::L3, size) > testbed.hierarchy_hit(Level::L1, size));
//!
//! let rousskov = RousskovModel::min();
//! // Table 3, "Total Hierarchical" leaf row: 163 ms.
//! assert_eq!(rousskov.hierarchy_hit(Level::L1, size).as_millis_f64(), 163.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod rousskov;
pub mod testbed;

pub use model::{CostModel, Level, RemoteDistance};
pub use rousskov::{LevelComponents, RousskovModel};
pub use testbed::{TestbedModel, TestbedParams};
