//! The wide-area testbed cost model of §2.1.1 (Figure 1).
//!
//! The testbed arranged Squid 1.1.17 caches at UC Berkeley (client + L1),
//! UC San Diego (L2), UT Austin (L3), and a server at Cornell, and measured
//! fetch time as a function of object size for (a) hierarchical access,
//! (b) direct access, and (c) direct access via the L1 proxy.
//!
//! We model each path as a sum of links, where a *link* contributes a fixed
//! setup cost (TCP connect, HTTP parse, proxy processing) plus a
//! store-and-forward transfer (`size / bandwidth`), and the cache that
//! supplies the data contributes a disk swap-in cost. The constants below
//! are fit to the paper's published anchor points:
//!
//! * an 8 KB L3 hierarchy hit is ≈2.5× slower than fetching the same object
//!   from the L3 cache directly, a difference of ≈545 ms (§2.1.1);
//! * L1 hits for 8 KB objects are ≈4.75× faster than direct access to an
//!   L2-distance cache and ≈6.17× faster than an L3-distance cache (§4);
//! * curves grow slowly below ~64 KB and roughly linearly past 256 KB
//!   (Figure 1's log-log shape).

use crate::model::{CostModel, Level, RemoteDistance};
use bh_simcore::{ByteSize, SimDuration};
use serde::{Deserialize, Serialize};

/// One link (or link class) in the testbed: setup latency plus bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Fixed per-traversal cost in ms (connect + request parse + proxy
    /// processing).
    pub setup_ms: f64,
    /// Transfer bandwidth in Mbit/s for the store-and-forward copy.
    pub bandwidth_mbps: f64,
}

impl Link {
    /// Time to traverse this link with `size` bytes of payload.
    pub fn traverse(&self, size: ByteSize) -> f64 {
        self.setup_ms + size.as_bytes() as f64 * 8.0 / (self.bandwidth_mbps * 1000.0)
    }
}

/// Full parameter set for the testbed model. All times in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestbedParams {
    /// Client ↔ L1 (switched 10 Mbit/s Ethernet, same building).
    pub client_l1: Link,
    /// L1 ↔ L2 (Berkeley ↔ San Diego over T3-connected Internet).
    pub l1_l2: Link,
    /// L2 ↔ L3 (San Diego ↔ Austin).
    pub l2_l3: Link,
    /// L3 ↔ origin server (Austin ↔ Cornell).
    pub l3_server: Link,
    /// Direct path from the L1 site to an L2-distance cache.
    pub direct_l2: Link,
    /// Direct path from the L1 site to an L3-distance cache.
    pub direct_l3: Link,
    /// Direct path from the L1 site to the origin server.
    pub direct_server: Link,
    /// Disk swap-in cost at each level's cache, ms.
    pub disk_ms: [f64; 3],
    /// Server-side service time, ms.
    pub server_ms: f64,
}

impl Default for TestbedParams {
    fn default() -> Self {
        // Fit to the Figure 1 anchors; see module docs. The inter-proxy
        // setup costs are dominated by Squid request-processing overhead on
        // loaded wide-area caches, not raw RTT, which is why they are large.
        TestbedParams {
            client_l1: Link {
                setup_ms: 10.0,
                bandwidth_mbps: 8.0,
            },
            l1_l2: Link {
                setup_ms: 280.0,
                bandwidth_mbps: 1.2,
            },
            l2_l3: Link {
                setup_ms: 360.0,
                bandwidth_mbps: 1.0,
            },
            l3_server: Link {
                setup_ms: 350.0,
                bandwidth_mbps: 0.9,
            },
            direct_l2: Link {
                setup_ms: 180.0,
                bandwidth_mbps: 1.4,
            },
            direct_l3: Link {
                setup_ms: 200.0,
                bandwidth_mbps: 1.2,
            },
            direct_server: Link {
                setup_ms: 250.0,
                bandwidth_mbps: 1.1,
            },
            disk_ms: [40.0, 60.0, 80.0],
            server_ms: 60.0,
        }
    }
}

/// The testbed cost model (see module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestbedModel {
    params: TestbedParams,
}

impl Default for TestbedModel {
    fn default() -> Self {
        Self::new()
    }
}

impl TestbedModel {
    /// Creates the model with the default (paper-anchored) parameters.
    pub fn new() -> Self {
        TestbedModel {
            params: TestbedParams::default(),
        }
    }

    /// Creates the model with custom parameters.
    pub fn with_params(params: TestbedParams) -> Self {
        TestbedModel { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &TestbedParams {
        &self.params
    }

    fn hier_links(&self, level: Level) -> Vec<&Link> {
        let p = &self.params;
        match level {
            Level::L1 => vec![&p.client_l1],
            Level::L2 => vec![&p.client_l1, &p.l1_l2],
            Level::L3 => vec![&p.client_l1, &p.l1_l2, &p.l2_l3],
        }
    }

    fn direct_link(&self, distance: RemoteDistance) -> &Link {
        match distance {
            RemoteDistance::SameL2 => &self.params.direct_l2,
            RemoteDistance::SameL3 => &self.params.direct_l3,
        }
    }

    fn remote_disk_ms(&self, distance: RemoteDistance) -> f64 {
        // Peer caches are L1-class machines; their disk cost is the L1 one.
        let _ = distance;
        self.params.disk_ms[0]
    }
}

impl CostModel for TestbedModel {
    fn hierarchy_hit(&self, level: Level, size: ByteSize) -> SimDuration {
        let ms: f64 = self
            .hier_links(level)
            .iter()
            .map(|l| l.traverse(size))
            .sum::<f64>()
            + self.params.disk_ms[level.depth() - 1];
        SimDuration::from_millis_f64(ms)
    }

    fn hierarchy_miss(&self, size: ByteSize) -> SimDuration {
        let ms: f64 = self
            .hier_links(Level::L3)
            .iter()
            .map(|l| l.traverse(size))
            .sum::<f64>()
            + self.params.l3_server.traverse(size)
            + self.params.server_ms;
        SimDuration::from_millis_f64(ms)
    }

    fn remote_fetch(&self, distance: RemoteDistance, size: ByteSize) -> SimDuration {
        let ms = self.params.client_l1.traverse(size)
            + self.direct_link(distance).traverse(size)
            + self.remote_disk_ms(distance);
        SimDuration::from_millis_f64(ms)
    }

    fn server_fetch(&self, size: ByteSize) -> SimDuration {
        let ms = self.params.client_l1.traverse(size)
            + self.params.direct_server.traverse(size)
            + self.params.server_ms;
        SimDuration::from_millis_f64(ms)
    }

    fn false_positive_penalty(&self, distance: RemoteDistance) -> SimDuration {
        // Request goes out, an error reply (no payload) comes back.
        SimDuration::from_millis_f64(self.direct_link(distance).setup_ms)
    }

    fn directory_lookup(&self) -> SimDuration {
        // Directory sits at root distance; a lookup is a payload-free round trip.
        SimDuration::from_millis_f64(self.params.direct_l3.setup_ms)
    }

    fn remote_fetch_from_client(&self, distance: RemoteDistance, size: ByteSize) -> SimDuration {
        let ms = self.direct_link(distance).traverse(size) + self.remote_disk_ms(distance);
        SimDuration::from_millis_f64(ms)
    }

    fn server_fetch_from_client(&self, size: ByteSize) -> SimDuration {
        let ms = self.params.direct_server.traverse(size) + self.params.server_ms;
        SimDuration::from_millis_f64(ms)
    }

    fn name(&self) -> &str {
        "Testbed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB8: ByteSize = ByteSize::from_kb(8);

    #[test]
    fn l1_hit_fast() {
        let m = TestbedModel::new();
        let t = m.hierarchy_hit(Level::L1, KB8).as_millis_f64();
        assert!((30.0..100.0).contains(&t), "8KB L1 hit {t} ms");
    }

    #[test]
    fn paper_anchor_l3_direct_vs_hierarchy() {
        // §2.1.1: ~545 ms difference and ~2.5× ratio at 8 KB.
        let m = TestbedModel::new();
        let hier = m.hierarchy_hit(Level::L3, KB8).as_millis_f64();
        let direct = m
            .remote_fetch_from_client(RemoteDistance::SameL3, KB8)
            .as_millis_f64();
        let diff = hier - direct;
        let ratio = hier / direct;
        assert!((400.0..700.0).contains(&diff), "difference {diff} ms");
        assert!((2.0..3.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn paper_anchor_l1_vs_remote_ratios() {
        // §4: L1 ≈4.75× faster than L2-distance, ≈6.17× faster than
        // L3-distance, for 8 KB objects.
        let m = TestbedModel::new();
        let l1 = m.hierarchy_hit(Level::L1, KB8).as_millis_f64();
        let r2 = m.remote_fetch(RemoteDistance::SameL2, KB8).as_millis_f64();
        let r3 = m.remote_fetch(RemoteDistance::SameL3, KB8).as_millis_f64();
        assert!(
            (3.0..6.5).contains(&(r2 / l1)),
            "L2-distance ratio {}",
            r2 / l1
        );
        assert!(
            (4.0..8.0).contains(&(r3 / l1)),
            "L3-distance ratio {}",
            r3 / l1
        );
    }

    #[test]
    fn monotone_in_level_and_size() {
        let m = TestbedModel::new();
        for &size in &[
            ByteSize::from_kb(2),
            ByteSize::from_kb(64),
            ByteSize::from_kb(1024),
        ] {
            assert!(m.hierarchy_hit(Level::L1, size) < m.hierarchy_hit(Level::L2, size));
            assert!(m.hierarchy_hit(Level::L2, size) < m.hierarchy_hit(Level::L3, size));
            assert!(m.hierarchy_hit(Level::L3, size) < m.hierarchy_miss(size));
        }
        for level in Level::ALL {
            assert!(
                m.hierarchy_hit(level, ByteSize::from_kb(2))
                    < m.hierarchy_hit(level, ByteSize::from_kb(1024))
            );
        }
    }

    #[test]
    fn miss_through_hierarchy_slower_than_direct_server() {
        // The whole point of "do not slow down misses".
        let m = TestbedModel::new();
        assert!(m.hierarchy_miss(KB8) > m.server_fetch(KB8) + SimDuration::from_millis(300));
    }

    #[test]
    fn client_config_faster_than_via_l1() {
        let m = TestbedModel::new();
        assert!(
            m.remote_fetch_from_client(RemoteDistance::SameL2, KB8)
                < m.remote_fetch(RemoteDistance::SameL2, KB8)
        );
        assert!(m.server_fetch_from_client(KB8) < m.server_fetch(KB8));
    }

    #[test]
    fn false_positive_cheaper_than_fetch() {
        let m = TestbedModel::new();
        for d in [RemoteDistance::SameL2, RemoteDistance::SameL3] {
            assert!(m.false_positive_penalty(d) < m.remote_fetch(d, KB8));
        }
    }

    #[test]
    fn params_serde_round_trip() {
        // Operators tune cost models from config files; the parameter set
        // must survive serialization.
        let params = TestbedParams::default();
        let json = serde_json::to_string(&params).expect("serialize");
        let back: TestbedParams = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(params, back);
        let model = TestbedModel::with_params(back);
        assert_eq!(
            model.hierarchy_hit(Level::L3, KB8),
            TestbedModel::new().hierarchy_hit(Level::L3, KB8)
        );
    }

    #[test]
    fn custom_params_change_costs() {
        let mut params = TestbedParams::default();
        params.client_l1.setup_ms += 500.0;
        let slow = TestbedModel::with_params(params);
        assert!(
            slow.hierarchy_hit(Level::L1, KB8) > TestbedModel::new().hierarchy_hit(Level::L1, KB8)
        );
    }

    #[test]
    fn bandwidth_dominates_large_objects() {
        let m = TestbedModel::new();
        let one_mb = ByteSize::from_kb(1024);
        let t = m.hierarchy_hit(Level::L3, one_mb).as_millis_f64();
        // 1 MB over three store-and-forward hops at ~1 Mbit/s each is tens
        // of seconds — matches the top of Figure 1(a)'s y-axis.
        assert!(t > 10_000.0, "1MB L3 hierarchy hit {t} ms");
    }
}
