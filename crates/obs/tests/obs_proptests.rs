//! Property tests for the metrics registry: histogram bucket placement
//! and snapshot-merge algebra.

use bh_obs::{Determinism, HistogramSnapshot, Registry, Unit};
use proptest::prelude::*;

/// Strictly increasing, non-empty bound vectors.
fn arb_bounds() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(1u64..10_000, 1..8).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

fn observe_all(bounds: &[u64], values: &[u64]) -> HistogramSnapshot {
    let reg = Registry::new();
    let h = reg.histogram("h", Unit::Micros, "", Determinism::Measured, bounds);
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

proptest! {
    /// Every observation lands in exactly one bucket: the first whose
    /// inclusive upper bound is >= the value, or the overflow bucket.
    #[test]
    fn bucket_boundaries(
        bounds in arb_bounds(),
        values in proptest::collection::vec(0u64..20_000, 0..100),
    ) {
        let snap = observe_all(&bounds, &values);
        prop_assert_eq!(snap.buckets.len(), bounds.len() + 1);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        // Recompute expected bucket counts independently.
        let mut expect = vec![0u64; bounds.len() + 1];
        for &v in &values {
            let idx = bounds
                .iter()
                .position(|&b| v <= b)
                .unwrap_or(bounds.len());
            expect[idx] += 1;
            prop_assert_eq!(snap.bucket_for(v), idx);
        }
        prop_assert_eq!(&snap.buckets, &expect);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }

    /// An observation at exactly a bound lands in that bound's bucket
    /// (bounds are inclusive), and one past it lands in the next.
    #[test]
    fn bounds_are_inclusive(bounds in arb_bounds()) {
        for (i, &b) in bounds.iter().enumerate() {
            let at = observe_all(&bounds, &[b]);
            prop_assert_eq!(at.bucket_for(b), i);
            prop_assert_eq!(at.buckets[i], 1);
            let past = observe_all(&bounds, &[b + 1]);
            prop_assert_eq!(past.bucket_for(b + 1), i + 1);
            prop_assert_eq!(past.buckets[i + 1], 1);
        }
    }

    /// Merge is associative and commutative, and merging equals observing
    /// the concatenated value stream directly.
    #[test]
    fn merge_associativity(
        bounds in arb_bounds(),
        xs in proptest::collection::vec(0u64..20_000, 0..60),
        ys in proptest::collection::vec(0u64..20_000, 0..60),
        zs in proptest::collection::vec(0u64..20_000, 0..60),
    ) {
        let a = observe_all(&bounds, &xs);
        let b = observe_all(&bounds, &ys);
        let c = observe_all(&bounds, &zs);

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);

        // Commutativity: b ⊕ a == a ⊕ b.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // Merging shard snapshots equals one histogram fed everything.
        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        let direct = observe_all(&bounds, &all);
        prop_assert_eq!(&left, &direct);
    }
}
