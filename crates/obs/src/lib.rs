//! `bh-obs`: the observability substrate shared by the simulator and the
//! live prototype.
//!
//! Two pieces, both dependency-free:
//!
//! * [`registry`] — a typed metrics registry. Counters, gauges and
//!   histograms are declared once (name, unit, help, determinism class)
//!   and updated through cheap cloned handles backed by relaxed atomics;
//!   [`Registry::snapshot`] renders a deterministic name-sorted view.
//! * [`trace`] — a fixed-capacity structured event ring. Records are
//!   `Copy` and encode without allocating; the clock is always passed in
//!   by the caller, so deterministic code paths stay `bh-lint` clean.
//!
//! The crate deliberately has no serde/wire dependencies: consumers map
//! [`MetricEntry`]/[`TraceEvent`] onto their own JSON or frame formats.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod registry;
pub mod trace;

pub use registry::{
    Counter, Determinism, Gauge, Histogram, HistogramSnapshot, MetricEntry, MetricInfo, Registry,
    Unit,
};
pub use trace::{span, TraceEvent, TraceRing};
