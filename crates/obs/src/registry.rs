//! The typed metrics registry.
//!
//! Metrics are registered once — name, unit, help text, determinism
//! class — and updated through cloned handles. Handles are `Arc`s around
//! atomics, so the hot path is a single relaxed RMW with no lock and no
//! allocation. The registry itself is only locked at registration and
//! snapshot time.
//!
//! Snapshots are deterministic: entries come out sorted by name, and
//! histograms expand into fixed `name.le.*` / `name.count` / `name.sum`
//! integer entries so every consumer (wire frames, JSON artifacts, the
//! chaos dump) sees one flat `(name, u64)` list.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What a metric's value measures. Rendered in the catalog and docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// A plain event count.
    Count,
    /// Bytes.
    Bytes,
    /// Microseconds.
    Micros,
    /// Live connection objects.
    Connections,
    /// Peer nodes.
    Peers,
}

impl Unit {
    /// Stable lower-case label for catalogs and dumps.
    pub fn label(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Bytes => "bytes",
            Unit::Micros => "micros",
            Unit::Connections => "connections",
            Unit::Peers => "peers",
        }
    }
}

/// Whether a metric's value is a pure function of the seeded plan
/// (`Deterministic`) or depends on wall-clock timing, thread interleaving
/// or the network (`Measured`).
///
/// Deterministic artifacts such as `obs_dump.json` snapshot only the
/// `Deterministic` subset, which is what makes them byte-identical across
/// `--jobs` levels and repeated seeded runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determinism {
    /// Byte-identical across reruns of the same seeded plan.
    Deterministic,
    /// Timing- or environment-dependent.
    Measured,
}

/// One value in a snapshot: a metric name and its integer value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricEntry {
    /// Registered name (histograms expand to `name.le.*` etc.).
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// Catalog row describing a registered metric.
#[derive(Debug, Clone)]
pub struct MetricInfo {
    /// Registered name.
    pub name: String,
    /// Unit of the value.
    pub unit: Unit,
    /// One-line help text.
    pub help: String,
    /// Determinism class.
    pub determinism: Determinism,
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can move both ways.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<u64>,
    /// One slot per bound plus a final overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram handle.
///
/// `observe(v)` lands `v` in the first bucket whose inclusive upper bound
/// is `>= v` (or the overflow bucket) with three relaxed atomic adds.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self.0.bounds.partition_point(|b| *b < v);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds.clone(),
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the finite buckets.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `buckets.len() == bounds.len() + 1` (overflow last).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Merges `other` into `self`. Merging is commutative and associative,
    /// so shard-local histograms can be folded in any order.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ — merging histograms of different
    /// shapes is a registration bug, not a runtime condition.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram merge across different bucket bounds"
        );
        for (into, from) in self.buckets.iter_mut().zip(&other.buckets) {
            *into += from;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The bucket index `observe(v)` would land in.
    pub fn bucket_for(&self, v: u64) -> usize {
        self.bounds.partition_point(|b| *b < v)
    }
}

#[derive(Debug)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Entry {
    name: String,
    unit: Unit,
    help: String,
    determinism: Determinism,
    slot: Slot,
}

/// The metrics registry: owns every declared metric, hands out typed
/// handles, and renders deterministic snapshots.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn insert(&self, name: String, unit: Unit, help: &str, det: Determinism, slot: Slot) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        assert!(
            !entries.iter().any(|e| e.name == name),
            "metric `{name}` registered twice"
        );
        entries.push(Entry {
            name,
            unit,
            help: help.to_string(),
            determinism: det,
            slot,
        });
    }

    /// Registers a counter and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered (a setup-time bug).
    pub fn counter(
        &self,
        name: impl Into<String>,
        unit: Unit,
        help: &str,
        det: Determinism,
    ) -> Counter {
        let c = Counter(Arc::new(AtomicU64::new(0)));
        self.insert(name.into(), unit, help, det, Slot::Counter(c.clone()));
        c
    }

    /// Registers a gauge and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn gauge(
        &self,
        name: impl Into<String>,
        unit: Unit,
        help: &str,
        det: Determinism,
    ) -> Gauge {
        let g = Gauge(Arc::new(AtomicU64::new(0)));
        self.insert(name.into(), unit, help, det, Slot::Gauge(g.clone()));
        g
    }

    /// Registers a histogram with the given inclusive upper `bounds`
    /// (strictly increasing; an overflow bucket is added automatically).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered or `bounds` is empty or not
    /// strictly increasing.
    pub fn histogram(
        &self,
        name: impl Into<String>,
        unit: Unit,
        help: &str,
        det: Determinism,
        bounds: &[u64],
    ) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let h = Histogram(Arc::new(HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }));
        self.insert(name.into(), unit, help, det, Slot::Histogram(h.clone()));
        h
    }

    /// All current values, sorted by name. Histograms expand into
    /// `name.le.<bound>` / `name.le.inf` / `name.count` / `name.sum`.
    pub fn snapshot(&self) -> Vec<MetricEntry> {
        self.snapshot_where(|_| true)
    }

    /// The subset of [`Registry::snapshot`] whose determinism class is
    /// `det`. Deterministic artifacts use
    /// `snapshot_filtered(Determinism::Deterministic)`.
    pub fn snapshot_filtered(&self, det: Determinism) -> Vec<MetricEntry> {
        self.snapshot_where(|e| e.determinism == det)
    }

    fn snapshot_where(&self, keep: impl Fn(&Entry) -> bool) -> Vec<MetricEntry> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(entries.len());
        for e in entries.iter().filter(|e| keep(e)) {
            match &e.slot {
                Slot::Counter(c) => out.push(MetricEntry {
                    name: e.name.clone(),
                    value: c.get(),
                }),
                Slot::Gauge(g) => out.push(MetricEntry {
                    name: e.name.clone(),
                    value: g.get(),
                }),
                Slot::Histogram(h) => {
                    let snap = h.snapshot();
                    for (bound, n) in snap.bounds.iter().zip(&snap.buckets) {
                        out.push(MetricEntry {
                            name: format!("{}.le.{bound}", e.name),
                            value: *n,
                        });
                    }
                    out.push(MetricEntry {
                        name: format!("{}.le.inf", e.name),
                        value: *snap.buckets.last().unwrap_or(&0),
                    });
                    out.push(MetricEntry {
                        name: format!("{}.count", e.name),
                        value: snap.count,
                    });
                    out.push(MetricEntry {
                        name: format!("{}.sum", e.name),
                        value: snap.sum,
                    });
                }
            }
        }
        out.sort();
        out
    }

    /// The catalog of registered metrics, sorted by name.
    pub fn catalog(&self) -> Vec<MetricInfo> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<MetricInfo> = entries
            .iter()
            .map(|e| MetricInfo {
                name: e.name.clone(),
                unit: e.unit,
                help: e.help.clone(),
                determinism: e.determinism,
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_snapshot_sorted() {
        let reg = Registry::new();
        let b = reg.counter("b_counter", Unit::Count, "b", Determinism::Measured);
        let a = reg.gauge("a_gauge", Unit::Peers, "a", Determinism::Measured);
        b.add(3);
        b.inc();
        a.set(7);
        let snap = reg.snapshot();
        assert_eq!(
            snap,
            vec![
                MetricEntry {
                    name: "a_gauge".into(),
                    value: 7
                },
                MetricEntry {
                    name: "b_counter".into(),
                    value: 4
                },
            ]
        );
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let reg = Registry::new();
        let _ = reg.counter("dup", Unit::Count, "", Determinism::Measured);
        let _ = reg.counter("dup", Unit::Count, "", Determinism::Measured);
    }

    #[test]
    fn handles_are_cheap_clones_of_the_same_cell() {
        let reg = Registry::new();
        let c = reg.counter("c", Unit::Count, "", Determinism::Measured);
        let c2 = c.clone();
        c.inc();
        c2.inc();
        assert_eq!(c.get(), 2);
        assert_eq!(reg.snapshot()[0].value, 2);
    }

    #[test]
    fn histogram_expands_into_flat_entries() {
        let reg = Registry::new();
        let h = reg.histogram("lat", Unit::Micros, "", Determinism::Measured, &[10, 100]);
        h.observe(5);
        h.observe(10); // inclusive upper bound
        h.observe(50);
        h.observe(1000); // overflow
        let snap = reg.snapshot();
        let get = |n: &str| snap.iter().find(|e| e.name == n).map(|e| e.value);
        assert_eq!(get("lat.le.10"), Some(2));
        assert_eq!(get("lat.le.100"), Some(1));
        assert_eq!(get("lat.le.inf"), Some(1));
        assert_eq!(get("lat.count"), Some(4));
        assert_eq!(get("lat.sum"), Some(1065));
    }

    #[test]
    fn determinism_filter_partitions_the_registry() {
        let reg = Registry::new();
        let d = reg.counter("det", Unit::Count, "", Determinism::Deterministic);
        let m = reg.counter("meas", Unit::Count, "", Determinism::Measured);
        d.add(1);
        m.add(2);
        let det = reg.snapshot_filtered(Determinism::Deterministic);
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].name, "det");
        let meas = reg.snapshot_filtered(Determinism::Measured);
        assert_eq!(meas.len(), 1);
        assert_eq!(meas[0].name, "meas");
        assert_eq!(reg.snapshot().len(), 2);
    }

    #[test]
    fn catalog_lists_declared_metadata() {
        let reg = Registry::new();
        let _ = reg.counter("hits", Unit::Count, "cache hits", Determinism::Measured);
        let cat = reg.catalog();
        assert_eq!(cat.len(), 1);
        assert_eq!(cat[0].name, "hits");
        assert_eq!(cat[0].unit.label(), "count");
        assert_eq!(cat[0].help, "cache hits");
    }
}
