//! Structured event tracing: a fixed-capacity ring of `Copy` records.
//!
//! The ring never allocates after construction; recording overwrites the
//! oldest entry once full. Timestamps are supplied by the caller — the
//! ring itself never reads a clock, so deterministic code can pass
//! simulated time and stay `bh-lint` clean, while live nodes pass
//! `started.elapsed()` micros.

/// One trace record. 26 bytes on the wire (`ts` + `kind` + `a` + `b`),
/// `Copy`, encoded without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the owning component started (caller-supplied).
    pub ts_micros: u64,
    /// Span kind — one of the [`span`] constants, or app-defined.
    pub kind: u16,
    /// First operand (conventionally the object key).
    pub a: u64,
    /// Second operand (kind-specific: outcome code, batch size, ...).
    pub b: u64,
}

/// Span-kind constants for the request-service and hint-propagation
/// paths, plus a stable name table for renderers.
pub mod span {
    /// Request received (`a` = object key).
    pub const RECV: u16 = 1;
    /// Hint-cache lookup (`a` = key, `b` = 1 if a hint was found).
    pub const HINT_LOOKUP: u16 = 2;
    /// Peer probe issued (`a` = key, `b` = outcome: 0 hit, 1 false
    /// positive, 2 transport failure).
    pub const PEER_PROBE: u16 = 3;
    /// Origin fetch (`a` = key, `b` = status code).
    pub const ORIGIN_FETCH: u16 = 4;
    /// Reply written (`a` = key, `b` = served-by code).
    pub const REPLY: u16 = 5;
    /// Served from the local store (`a` = key).
    pub const LOCAL_HIT: u16 = 6;
    /// Hint-propagation batch flushed (`a` = records, `b` = targets).
    pub const FLUSH_BATCH: u16 = 7;
    /// `Get` rejected by admission control (`a` = key, `b` = queue depth
    /// at rejection).
    pub const ADMISSION_REJECT: u16 = 8;
    /// Worker queue crossed its high-water mark (`a` = queue depth,
    /// `b` = high-water mark). One per saturation episode.
    pub const QUEUE_SATURATION: u16 = 9;

    /// Human-readable name for a span kind.
    pub fn name(kind: u16) -> &'static str {
        match kind {
            RECV => "recv",
            HINT_LOOKUP => "hint-lookup",
            PEER_PROBE => "peer-probe",
            ORIGIN_FETCH => "origin-fetch",
            REPLY => "reply",
            LOCAL_HIT => "local-hit",
            FLUSH_BATCH => "flush-batch",
            ADMISSION_REJECT => "admission-reject",
            QUEUE_SATURATION => "queue-saturation",
            _ => "unknown",
        }
    }
}

/// Fixed-capacity ring buffer of [`TraceEvent`]s.
#[derive(Debug)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Write cursor once the ring is full; the oldest record lives here.
    next: usize,
    total: u64,
}

impl TraceRing {
    /// A ring holding up to `capacity` records (minimum 1). The backing
    /// store is allocated once, up front.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        TraceRing {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            total: 0,
        }
    }

    /// Records one event, overwriting the oldest once full. Never
    /// allocates after the ring has filled.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
        }
        self.total += 1;
    }

    /// Retained records, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total records ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Maximum number of retained records.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent {
            ts_micros: i,
            kind: span::RECV,
            a: i,
            b: 0,
        }
    }

    #[test]
    fn fills_then_wraps_keeping_newest() {
        let mut ring = TraceRing::new(3);
        for i in 0..5 {
            ring.record(ev(i));
        }
        let got: Vec<u64> = ring.snapshot().iter().map(|e| e.a).collect();
        assert_eq!(got, [2, 3, 4]);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_recorded(), 5);
    }

    #[test]
    fn partial_fill_preserves_order() {
        let mut ring = TraceRing::new(8);
        for i in 0..3 {
            ring.record(ev(i));
        }
        let got: Vec<u64> = ring.snapshot().iter().map(|e| e.a).collect();
        assert_eq!(got, [0, 1, 2]);
    }

    #[test]
    fn wrap_exactly_at_capacity_boundary() {
        let mut ring = TraceRing::new(2);
        ring.record(ev(0));
        ring.record(ev(1));
        assert_eq!(
            ring.snapshot().iter().map(|e| e.a).collect::<Vec<_>>(),
            [0, 1]
        );
        ring.record(ev(2));
        assert_eq!(
            ring.snapshot().iter().map(|e| e.a).collect::<Vec<_>>(),
            [1, 2]
        );
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut ring = TraceRing::new(0);
        ring.record(ev(1));
        ring.record(ev(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.snapshot()[0].a, 2);
    }

    #[test]
    fn span_names_are_stable() {
        assert_eq!(span::name(span::RECV), "recv");
        assert_eq!(span::name(span::FLUSH_BATCH), "flush-batch");
        assert_eq!(span::name(999), "unknown");
    }
}
