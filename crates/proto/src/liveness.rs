//! Heartbeat-driven peer failure detection.
//!
//! Each node pings its neighbor set on a fixed interval and feeds the
//! outcomes into a [`LivenessTracker`] — a small per-peer state machine:
//!
//! ```text
//! Alive --k consecutive failures--> Suspect --confirm window--> Dead
//!   ^                                  |                          |
//!   +------------- one success --------+----------(revival)------+
//! ```
//!
//! The two-stage design separates the paper's §3.2 *per-request* contract
//! (a failed hint costs exactly one wasted probe, enforced by the pool's
//! quarantine) from *standing* state repair, which should only happen once
//! failure is durable: confirmed death triggers stale-hint garbage
//! collection and Plaxton-table repair, both of which are wasteful to run
//! on a transient blip. The suspicion threshold filters single lost
//! heartbeats; the confirmation window (`confirm_death_after`, measured
//! from the *first* failure of the current streak) filters short
//! partitions and restarts.
//!
//! The tracker itself is pure bookkeeping — callers pass in the clock —
//! so every transition is unit-testable without sleeping.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Tuning for the failure detector.
#[derive(Debug, Clone, Copy)]
pub struct LivenessConfig {
    /// Consecutive heartbeat failures before a peer becomes `Suspect`.
    pub suspicion_threshold: u32,
    /// Minimum time between a streak's first failure and confirming
    /// `Dead`. Must cover at least one full partition-heal or restart
    /// cycle the deployment wants to tolerate silently.
    pub confirm_death_after: Duration,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        LivenessConfig {
            suspicion_threshold: 3,
            confirm_death_after: Duration::from_secs(30),
        }
    }
}

/// A peer's health as judged by the failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerHealth {
    /// Answering heartbeats (or never yet probed).
    Alive,
    /// Missed enough consecutive heartbeats to be suspected.
    Suspect,
    /// Suspected for longer than the confirmation window.
    Dead,
}

/// A state change produced by recording a heartbeat outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// No health change.
    None,
    /// Alive → Suspect (threshold crossed).
    Suspected,
    /// Suspect → Dead (confirmation window elapsed). Fires exactly once
    /// per death; the caller runs its repair actions on this edge.
    Died,
    /// Dead → Alive (the peer answered again). Fires exactly once per
    /// revival; the caller re-wires the peer in.
    Revived,
}

#[derive(Debug, Default)]
struct PeerRecord {
    consecutive_failures: u32,
    first_failure: Option<Instant>,
    health: Option<PeerHealth>,
}

impl PeerRecord {
    fn health(&self) -> PeerHealth {
        self.health.unwrap_or(PeerHealth::Alive)
    }
}

/// Per-peer heartbeat bookkeeping. See the [module docs](self).
#[derive(Debug, Default)]
pub struct LivenessTracker {
    config: LivenessConfig,
    peers: HashMap<SocketAddr, PeerRecord>,
}

impl LivenessTracker {
    /// Creates a tracker; peers start `Alive` implicitly.
    pub fn new(config: LivenessConfig) -> Self {
        LivenessTracker {
            config,
            peers: HashMap::new(),
        }
    }

    /// Records a successful heartbeat (or any successful exchange) with
    /// `addr`.
    pub fn record_ok(&mut self, addr: SocketAddr) -> Transition {
        let rec = self.peers.entry(addr).or_default();
        let was_dead = rec.health() == PeerHealth::Dead;
        rec.consecutive_failures = 0;
        rec.first_failure = None;
        rec.health = Some(PeerHealth::Alive);
        if was_dead {
            Transition::Revived
        } else {
            Transition::None
        }
    }

    /// Records a failed heartbeat against `addr` at time `now`.
    pub fn record_failure(&mut self, addr: SocketAddr, now: Instant) -> Transition {
        let config = self.config;
        let rec = self.peers.entry(addr).or_default();
        if rec.health() == PeerHealth::Dead {
            return Transition::None; // Already confirmed; nothing left to do.
        }
        rec.consecutive_failures = rec.consecutive_failures.saturating_add(1);
        let first = *rec.first_failure.get_or_insert(now);
        if rec.consecutive_failures < config.suspicion_threshold {
            return Transition::None;
        }
        if now.saturating_duration_since(first) >= config.confirm_death_after {
            rec.health = Some(PeerHealth::Dead);
            Transition::Died
        } else if rec.health() != PeerHealth::Suspect {
            rec.health = Some(PeerHealth::Suspect);
            Transition::Suspected
        } else {
            Transition::None
        }
    }

    /// The current judgment for `addr` (`Alive` if never recorded).
    pub fn health(&self, addr: SocketAddr) -> PeerHealth {
        self.peers
            .get(&addr)
            .map_or(PeerHealth::Alive, |r| r.health())
    }

    /// Every peer currently judged `Dead`.
    pub fn dead_peers(&self) -> Vec<SocketAddr> {
        let mut out: Vec<SocketAddr> = self
            .peers
            .iter()
            .filter(|(_, r)| r.health() == PeerHealth::Dead)
            .map(|(a, _)| *a)
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> SocketAddr {
        format!("127.0.0.{n}:1000").parse().expect("addr")
    }

    fn quick() -> LivenessConfig {
        LivenessConfig {
            suspicion_threshold: 3,
            confirm_death_after: Duration::from_millis(100),
        }
    }

    #[test]
    fn unknown_peers_are_alive() {
        let t = LivenessTracker::new(quick());
        assert_eq!(t.health(addr(1)), PeerHealth::Alive);
        assert!(t.dead_peers().is_empty());
    }

    #[test]
    fn suspicion_needs_consecutive_failures() {
        let mut t = LivenessTracker::new(quick());
        // bh-lint: allow(no-wall-clock, reason = "arbitrary base instant; the tracker is pure in the times passed to it")
        let now = Instant::now();
        assert_eq!(t.record_failure(addr(1), now), Transition::None);
        assert_eq!(t.record_failure(addr(1), now), Transition::None);
        // A success in between resets the streak entirely.
        assert_eq!(t.record_ok(addr(1)), Transition::None);
        assert_eq!(t.record_failure(addr(1), now), Transition::None);
        assert_eq!(t.record_failure(addr(1), now), Transition::None);
        assert_eq!(t.health(addr(1)), PeerHealth::Alive);
        assert_eq!(t.record_failure(addr(1), now), Transition::Suspected);
        assert_eq!(t.health(addr(1)), PeerHealth::Suspect);
    }

    #[test]
    fn death_requires_threshold_and_window() {
        let mut t = LivenessTracker::new(quick());
        // bh-lint: allow(no-wall-clock, reason = "arbitrary base instant; all deadlines are offsets from t0")
        let t0 = Instant::now();
        for _ in 0..2 {
            t.record_failure(addr(1), t0);
        }
        // Threshold crossed inside the window: only suspicion.
        assert_eq!(t.record_failure(addr(1), t0), Transition::Suspected);
        assert_eq!(
            t.record_failure(addr(1), t0 + Duration::from_millis(50)),
            Transition::None,
            "window not yet elapsed"
        );
        // Window elapsed since the *first* failure of the streak.
        assert_eq!(
            t.record_failure(addr(1), t0 + Duration::from_millis(100)),
            Transition::Died
        );
        assert_eq!(t.health(addr(1)), PeerHealth::Dead);
        assert_eq!(t.dead_peers(), vec![addr(1)]);
        // Died fires exactly once.
        assert_eq!(
            t.record_failure(addr(1), t0 + Duration::from_secs(5)),
            Transition::None
        );
    }

    #[test]
    fn revival_fires_once_and_resets() {
        let mut t = LivenessTracker::new(quick());
        // bh-lint: allow(no-wall-clock, reason = "arbitrary base instant; all deadlines are offsets from t0")
        let t0 = Instant::now();
        for _ in 0..3 {
            t.record_failure(addr(2), t0);
        }
        t.record_failure(addr(2), t0 + Duration::from_millis(150));
        assert_eq!(t.health(addr(2)), PeerHealth::Dead);
        assert_eq!(t.record_ok(addr(2)), Transition::Revived);
        assert_eq!(t.record_ok(addr(2)), Transition::None);
        assert_eq!(t.health(addr(2)), PeerHealth::Alive);
        // Post-revival failures need a whole fresh streak + window.
        let t1 = t0 + Duration::from_secs(1);
        for _ in 0..3 {
            assert_ne!(t.record_failure(addr(2), t1), Transition::Died);
        }
        assert_eq!(t.health(addr(2)), PeerHealth::Suspect);
    }

    #[test]
    fn peers_are_tracked_independently() {
        let mut t = LivenessTracker::new(quick());
        // bh-lint: allow(no-wall-clock, reason = "arbitrary base instant; all deadlines are offsets from t0")
        let t0 = Instant::now();
        for _ in 0..3 {
            t.record_failure(addr(1), t0);
        }
        t.record_failure(addr(1), t0 + Duration::from_millis(200));
        t.record_failure(addr(2), t0);
        assert_eq!(t.health(addr(1)), PeerHealth::Dead);
        assert_eq!(t.health(addr(2)), PeerHealth::Alive);
    }
}
