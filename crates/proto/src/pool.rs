//! Pooled peer/origin connections: keep-warm reuse, bounded exponential
//! backoff with deterministic jitter, and dead-peer quarantine.
//!
//! The seed prototype opened a fresh TCP connection for every peer probe,
//! origin fetch, and hint flush — faithful to 1998, but the dominant cost
//! once the daemon is asked to scale. The pool keeps a small set of idle
//! connections per remote warm and checks them out for one framed
//! request/reply round trip at a time, so a connection never carries
//! interleaved requests. Warm capacity is bounded twice over —
//! per remote ([`PoolConfig::max_idle_per_peer`]) and across the whole
//! pool ([`PoolConfig::max_idle_total`]) — so a node meshed with dozens
//! of peers cannot park its way past the process fd limit.
//!
//! Failure policy is per-request ([`RequestOptions`]), because the paper's
//! §3.2 contract is asymmetric:
//!
//! * **peer probes** get exactly one attempt and quarantine the peer on
//!   failure — a dead peer must cost at most one wasted probe, and while
//!   quarantined it costs none (the probe fails fast and the caller
//!   accounts a false positive exactly as if it had probed);
//! * **origin fetches** retry with backoff and ignore quarantine — the
//!   origin is the only copy of record, so giving up early turns a
//!   transient hiccup into a client-visible error.
//!
//! A *stale* pooled connection (peer restarted or idle-timed-out since
//! checkout) is retried once with a fresh connect without consuming an
//! attempt: the failure says nothing about the peer, only about the cached
//! socket.
//!
//! Three failure-hardening behaviours matter for the chaos harness:
//!
//! * backoff jitter is drawn from a **per-pool seeded stream**
//!   ([`PoolConfig::jitter_seed`]) — every node derives a distinct seed
//!   from its machine id, so a restarted peer sees its neighbours
//!   reconnect staggered instead of as a synchronized stampede, while any
//!   single pool's delay sequence stays reproducible;
//! * quarantine **escalates** on consecutive failures (doubling up to
//!   [`PoolConfig::quarantine_cap`]) and, once a window expires, only
//!   **one** request at a time may re-probe the peer — everyone else
//!   keeps failing fast until the prober reports back. Together these cap
//!   the re-probe frequency against a peer that stays dead;
//! * address-directed **partition blocks** ([`ConnectionPool::block`])
//!   and a process-wide [`FaultSwitch`] (outbound latency and packet
//!   drop) let the fault injector exercise all of the above
//!   deterministically.

use crate::wire::{self, Message};
use bh_netpoll::fault::FaultSwitch;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`ConnectionPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Per-connect timeout.
    pub connect_timeout: Duration,
    /// Read/write timeout applied to every pooled stream.
    pub io_timeout: Duration,
    /// Idle connections kept warm per remote address.
    pub max_idle_per_peer: usize,
    /// Idle connections kept warm across *all* remotes. The per-peer cap
    /// alone does not bound the pool: a node in an `n`-node full mesh
    /// talks to `n - 1` peers, and at `max_idle_per_peer` sockets each a
    /// 64-node process walks into the fd rlimit long before any single
    /// peer's bucket fills. When a finished round trip would exceed this
    /// cap the connection is closed instead of parked — the next request
    /// to that peer re-dials, which costs a loopback connect, not an
    /// error.
    pub max_idle_total: usize,
    /// First retry delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on any single retry delay.
    pub backoff_cap: Duration,
    /// How long a failed peer stays quarantined (first failure; consecutive
    /// failures double it).
    pub quarantine: Duration,
    /// Upper bound on an escalated quarantine window.
    pub quarantine_cap: Duration,
    /// Seed for the backoff-jitter stream. Pools with different seeds
    /// de-synchronize their retry schedules; the same seed reproduces the
    /// same delays (tests, replays).
    pub jitter_seed: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(5),
            max_idle_per_peer: 4,
            max_idle_total: 256,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(200),
            quarantine: Duration::from_secs(2),
            quarantine_cap: Duration::from_secs(30),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl PoolConfig {
    /// Returns the config with the jitter stream reseeded (builder-style).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }
}

/// Per-request failure policy.
#[derive(Debug, Clone, Copy)]
pub struct RequestOptions {
    /// Fresh-connect attempts before giving up (min 1).
    pub max_attempts: u32,
    /// Quarantine the remote after the final failed attempt.
    pub quarantine_on_failure: bool,
    /// Fail fast (without touching the network) while the remote is
    /// quarantined.
    pub respect_quarantine: bool,
}

impl RequestOptions {
    /// Policy for peer cache probes: one attempt, quarantine on failure,
    /// fail fast while quarantined. Preserves the §3.2 "one wasted probe"
    /// bound for dead peers.
    pub fn peer_probe() -> Self {
        RequestOptions {
            max_attempts: 1,
            quarantine_on_failure: true,
            respect_quarantine: true,
        }
    }

    /// Policy for origin fetches and other must-reach traffic: retry with
    /// backoff, never quarantine, ignore quarantine state.
    pub fn origin() -> Self {
        RequestOptions {
            max_attempts: 3,
            quarantine_on_failure: false,
            respect_quarantine: false,
        }
    }
}

/// Counters exposed for tests and the load generator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fresh TCP connects performed.
    pub connects: u64,
    /// Requests served over a reused warm connection.
    pub reuses: u64,
    /// Retry attempts after a failed fresh connect or round trip.
    pub retries: u64,
    /// Requests refused immediately because the remote was quarantined
    /// (includes refusals while another request held the re-probe slot).
    pub quarantine_rejections: u64,
    /// Requests refused because the remote was partition-blocked.
    pub partition_rejections: u64,
    /// Requests failed by the fault injector's packet-drop knob.
    pub injected_drops: u64,
}

/// A pooled stream plus its read buffer. The buffer lives with the stream:
/// a `BufReader` may read ahead, and any buffered bytes belong to this
/// connection's next reply, so the two are parked and checked out together.
#[derive(Debug)]
struct PooledConn {
    stream: TcpStream,
    reader: io::BufReader<TcpStream>,
}

impl PooledConn {
    fn new(stream: TcpStream) -> io::Result<Self> {
        let reader = io::BufReader::new(stream.try_clone()?);
        Ok(PooledConn { stream, reader })
    }
}

#[derive(Debug, Default)]
struct PeerState {
    idle: Vec<PooledConn>,
    quarantined_until: Option<Instant>,
    /// Consecutive quarantining failures; scales the next window.
    quarantine_streak: u32,
    /// A request currently holds the post-expiry re-probe slot.
    probing: bool,
}

/// A warm connection pool over every remote this node talks to.
#[derive(Debug)]
pub struct ConnectionPool {
    config: PoolConfig,
    peers: Mutex<HashMap<SocketAddr, PeerState>>,
    /// Addresses under an injected network partition.
    blocked: Mutex<HashSet<SocketAddr>>,
    stats: Mutex<PoolStats>,
    jitter_seed: AtomicU64,
    fault: Arc<FaultSwitch>,
    /// Poisoned pools fail every request immediately (node shutdown).
    poisoned: AtomicBool,
}

impl ConnectionPool {
    /// Creates an empty pool with a private (inert) fault switch.
    pub fn new(config: PoolConfig) -> Self {
        let fault = Arc::new(FaultSwitch::new(config.jitter_seed));
        Self::with_fault_switch(config, fault)
    }

    /// Creates an empty pool wired to a shared fault switch (the chaos
    /// driver flips the knobs, the pool observes them).
    pub fn with_fault_switch(config: PoolConfig, fault: Arc<FaultSwitch>) -> Self {
        ConnectionPool {
            jitter_seed: AtomicU64::new(config.jitter_seed | 1),
            config,
            peers: Mutex::new(HashMap::new()),
            blocked: Mutex::new(HashSet::new()),
            stats: Mutex::new(PoolStats::default()),
            fault,
            poisoned: AtomicBool::new(false),
        }
    }

    /// The fault switch this pool consults before every send.
    pub fn fault_switch(&self) -> &Arc<FaultSwitch> {
        &self.fault
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        *self.stats.lock()
    }

    /// True while `addr` is inside its quarantine window.
    pub fn is_quarantined(&self, addr: SocketAddr) -> bool {
        let peers = self.peers.lock();
        peers
            .get(&addr)
            .and_then(|p| p.quarantined_until)
            .is_some_and(|until| Instant::now() < until)
    }

    /// Consecutive quarantining failures recorded against `addr` (0 once a
    /// request succeeds).
    pub fn quarantine_streak(&self, addr: SocketAddr) -> u32 {
        self.peers
            .lock()
            .get(&addr)
            .map_or(0, |p| p.quarantine_streak)
    }

    /// The quarantine window applied after `streak` consecutive failures:
    /// base duration doubled per extra failure, capped.
    pub fn quarantine_window(&self, streak: u32) -> Duration {
        let base = self.config.quarantine.as_micros() as u64;
        let cap = self.config.quarantine_cap.as_micros() as u64;
        let exp = streak.saturating_sub(1).min(16);
        Duration::from_micros(base.saturating_mul(1u64 << exp).min(cap).max(1))
    }

    /// Injects a partition: requests to `addr` fail fast until
    /// [`ConnectionPool::unblock`]. Parked connections are dropped so the
    /// partition also severs warm paths.
    pub fn block(&self, addr: SocketAddr) {
        self.blocked.lock().insert(addr);
        if let Some(peer) = self.peers.lock().get_mut(&addr) {
            peer.idle.clear();
        }
    }

    /// Heals an injected partition.
    pub fn unblock(&self, addr: SocketAddr) {
        self.blocked.lock().remove(&addr);
    }

    /// True while `addr` is partition-blocked.
    pub fn is_blocked(&self, addr: SocketAddr) -> bool {
        self.blocked.lock().contains(&addr)
    }

    /// Idle (warm) connections currently parked for `addr`.
    pub fn idle_count(&self, addr: SocketAddr) -> usize {
        self.peers.lock().get(&addr).map_or(0, |p| p.idle.len())
    }

    /// Peers currently inside their quarantine window. Feeds the
    /// `pool_quarantined_peers` gauge — quarantine expiry is passive, so
    /// this is computed at scrape time instead of maintained incrementally.
    pub fn quarantined_peer_count(&self) -> usize {
        let now = Instant::now();
        let peers = self.peers.lock();
        peers
            .values()
            .filter(|p| p.quarantined_until.is_some_and(|until| now < until))
            .count()
    }

    /// Total idle (warm) connections parked across all peers. Feeds the
    /// `pool_live_connections` gauge.
    pub fn total_idle_connections(&self) -> usize {
        self.peers.lock().values().map(|p| p.idle.len()).sum()
    }

    /// Closes all idle connections and forgets quarantine state.
    pub fn clear(&self) {
        self.peers.lock().clear();
    }

    /// Clears quarantine bookkeeping for `addr` (liveness recovery: the
    /// failure detector saw the peer answer a heartbeat, so probes should
    /// flow again immediately rather than waiting out the window).
    pub fn forgive(&self, addr: SocketAddr) {
        if let Some(peer) = self.peers.lock().get_mut(&addr) {
            peer.quarantined_until = None;
            peer.quarantine_streak = 0;
            peer.probing = false;
        }
    }

    /// Poisons the pool: every subsequent request fails immediately with
    /// `ConnectionAborted` and idle connections are dropped. Used on node
    /// shutdown so worker threads blocked behind pool I/O unwind fast
    /// instead of riding out connect timeouts. Irreversible, idempotent.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        self.peers.lock().clear();
    }

    /// True once [`ConnectionPool::poison`] has been called.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Performs one framed request/reply round trip against `addr` under
    /// the given policy.
    ///
    /// # Errors
    ///
    /// Fails when the remote is quarantined (`respect_quarantine`) or
    /// partition-blocked, when the pool is poisoned, when the fault
    /// injector dropped the send, when every attempt errored, or when the
    /// reply cannot be decoded.
    pub fn request(
        &self,
        addr: SocketAddr,
        opts: RequestOptions,
        msg: &Message,
    ) -> io::Result<Message> {
        if self.is_poisoned() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "connection pool shut down",
            ));
        }
        if self.is_blocked(addr) {
            self.stats.lock().partition_rejections += 1;
            // A partition looks like silence, not refusal: surface it as a
            // timeout so callers treat it like an unreachable peer.
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("peer {addr} unreachable (injected partition)"),
            ));
        }

        // Quarantine gate: fail fast inside the window; once the window
        // has expired, admit exactly one re-probe at a time.
        let mut holds_probe_slot = false;
        if opts.respect_quarantine {
            let mut peers = self.peers.lock();
            if let Some(peer) = peers.get_mut(&addr) {
                match peer.quarantined_until {
                    Some(until) if Instant::now() < until => {
                        drop(peers);
                        self.stats.lock().quarantine_rejections += 1;
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionRefused,
                            format!("peer {addr} quarantined"),
                        ));
                    }
                    Some(_) => {
                        if peer.probing {
                            drop(peers);
                            self.stats.lock().quarantine_rejections += 1;
                            return Err(io::Error::new(
                                io::ErrorKind::ConnectionRefused,
                                format!("peer {addr} re-probe in flight"),
                            ));
                        }
                        peer.probing = true;
                        holds_probe_slot = true;
                    }
                    None => {}
                }
            }
        }
        let result = self.request_inner(addr, opts, msg);
        if holds_probe_slot {
            if let Some(peer) = self.peers.lock().get_mut(&addr) {
                peer.probing = false;
            }
        }
        result
    }

    fn request_inner(
        &self,
        addr: SocketAddr,
        opts: RequestOptions,
        msg: &Message,
    ) -> io::Result<Message> {
        // Fault injection: outbound latency, then a seeded drop decision.
        if let Some(delay) = self.fault.tx_latency() {
            std::thread::sleep(delay);
        }
        if self.fault.should_drop() {
            self.stats.lock().injected_drops += 1;
            if opts.quarantine_on_failure {
                self.quarantine(addr);
            }
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("send to {addr} dropped (injected fault)"),
            ));
        }

        // A stale pooled connection gets one free replay on a fresh socket:
        // its failure reflects the cached fd, not the remote.
        if let Some(stream) = self.checkout(addr) {
            match self.round_trip(stream, msg, addr) {
                Ok(reply) => {
                    self.stats.lock().reuses += 1;
                    return Ok(reply);
                }
                Err(_) => {
                    self.stats.lock().retries += 1;
                }
            }
        }

        let attempts = opts.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.stats.lock().retries += 1;
                std::thread::sleep(self.backoff_delay(attempt));
            }
            match self.connect(addr) {
                Ok(stream) => {
                    self.stats.lock().connects += 1;
                    match self.round_trip(stream, msg, addr) {
                        Ok(reply) => {
                            let mut peers = self.peers.lock();
                            let peer = peers.entry(addr).or_default();
                            peer.quarantined_until = None;
                            peer.quarantine_streak = 0;
                            return Ok(reply);
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }

        if opts.quarantine_on_failure {
            self.quarantine(addr);
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no attempts made")))
    }

    /// Opens (or escalates) the quarantine window for `addr`.
    fn quarantine(&self, addr: SocketAddr) {
        let mut peers = self.peers.lock();
        let peer = peers.entry(addr).or_default();
        peer.quarantine_streak = peer.quarantine_streak.saturating_add(1);
        let window = self.quarantine_window(peer.quarantine_streak);
        peer.quarantined_until = Some(Instant::now() + window);
        peer.idle.clear();
    }

    fn checkout(&self, addr: SocketAddr) -> Option<PooledConn> {
        self.peers.lock().get_mut(&addr)?.idle.pop()
    }

    fn connect(&self, addr: SocketAddr) -> io::Result<PooledConn> {
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;
        PooledConn::new(stream)
    }

    fn round_trip(
        &self,
        mut conn: PooledConn,
        msg: &Message,
        addr: SocketAddr,
    ) -> io::Result<Message> {
        wire::write_message(&mut conn.stream, msg)?;
        let reply = wire::read_message(&mut conn.reader)?;
        let mut peers = self.peers.lock();
        // Both caps must hold before parking: the per-peer cap keeps one
        // chatty remote from monopolizing the pool, the global cap keeps a
        // wide mesh (many remotes, few sockets each) inside the process fd
        // budget. The map is at most one entry per remote, so summing under
        // the lock is cheap.
        let idle_total: usize = peers.values().map(|p| p.idle.len()).sum();
        let peer = peers.entry(addr).or_default();
        if peer.idle.len() < self.config.max_idle_per_peer
            && idle_total < self.config.max_idle_total
        {
            peer.idle.push(conn);
        }
        Ok(reply)
    }

    /// Exponential backoff with jitter in `[delay/2, delay)`, capped. The
    /// jitter stream is seeded per pool ([`PoolConfig::jitter_seed`]): one
    /// pool's delays are reproducible, while pools with different seeds
    /// (every node derives its own from its machine id) spread their
    /// reconnect attempts instead of stampeding a restarted peer in
    /// lock-step.
    fn backoff_delay(&self, attempt: u32) -> Duration {
        let base = self.config.backoff_base.as_micros() as u64;
        let cap = self.config.backoff_cap.as_micros() as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(16)).min(cap).max(1);
        let seed = self
            .jitter_seed
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(
                    s.wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407),
                )
            })
            .unwrap_or_else(|prev| prev);
        let jitter = seed % (exp / 2).max(1);
        Duration::from_micros(exp / 2 + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// Serves `requests_per_conn` Ack replies per accepted connection, then
    /// closes it. `None` keeps connections open until the client hangs up.
    fn ack_server(requests_per_conn: Option<usize>) -> (SocketAddr, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let served = Arc::new(AtomicUsize::new(0));
        let served2 = Arc::clone(&served);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                let served = Arc::clone(&served2);
                std::thread::spawn(move || {
                    let mut handled = 0;
                    loop {
                        if wire::read_message(&mut stream).is_err() {
                            break;
                        }
                        // Count before replying: the client may assert on
                        // the counter the instant its reply arrives.
                        served.fetch_add(1, Ordering::SeqCst);
                        if wire::write_message(&mut stream, &Message::Ack).is_err() {
                            break;
                        }
                        handled += 1;
                        if requests_per_conn.is_some_and(|limit| handled >= limit) {
                            break;
                        }
                    }
                });
            }
        });
        (addr, served)
    }

    fn quick_config() -> PoolConfig {
        PoolConfig {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(500),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            quarantine: Duration::from_millis(200),
            ..PoolConfig::default()
        }
    }

    /// An address that refuses connections (bound then immediately freed).
    fn dead_addr() -> SocketAddr {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr")
    }

    #[test]
    fn second_request_reuses_the_warm_connection() {
        let (addr, _served) = ack_server(None);
        let pool = ConnectionPool::new(quick_config());
        for _ in 0..3 {
            let reply = pool
                .request(addr, RequestOptions::origin(), &Message::Ack)
                .expect("ack");
            assert_eq!(reply, Message::Ack);
        }
        let stats = pool.stats();
        assert_eq!(stats.connects, 1, "one connect serves all three requests");
        assert_eq!(stats.reuses, 2);
        assert_eq!(pool.idle_count(addr), 1);
    }

    #[test]
    fn global_idle_cap_bounds_total_warm_connections() {
        let servers: Vec<_> = (0..4).map(|_| ack_server(None)).collect();
        let pool = ConnectionPool::new(PoolConfig {
            max_idle_per_peer: 4,
            max_idle_total: 2,
            ..quick_config()
        });
        // Touch every remote twice: well under the per-peer cap, but the
        // pool as a whole may only park two sockets.
        for _ in 0..2 {
            for (addr, _) in &servers {
                pool.request(*addr, RequestOptions::origin(), &Message::Ack)
                    .expect("ack");
            }
        }
        assert_eq!(
            pool.total_idle_connections(),
            2,
            "global cap bounds warm sockets across all remotes"
        );
        // The capped remotes still work — their requests re-dial.
        for (addr, _) in &servers {
            pool.request(*addr, RequestOptions::origin(), &Message::Ack)
                .expect("ack after cap");
        }
        assert!(pool.total_idle_connections() <= 2);
    }

    #[test]
    fn stale_pooled_connection_is_replayed_on_a_fresh_socket() {
        let (addr, served) = ack_server(Some(1));
        let pool = ConnectionPool::new(quick_config());
        pool.request(addr, RequestOptions::origin(), &Message::Ack)
            .expect("first");
        // The server closed the connection after one request, but the pool
        // parked it. Give the close time to land, then request again: the
        // stale socket must be replaced transparently.
        std::thread::sleep(Duration::from_millis(50));
        pool.request(addr, RequestOptions::origin(), &Message::Ack)
            .expect("second");
        assert_eq!(pool.stats().connects, 2);
        assert_eq!(served.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn dead_peer_probe_fails_once_then_quarantines() {
        let addr = dead_addr();
        let pool = ConnectionPool::new(quick_config());

        let err = pool
            .request(addr, RequestOptions::peer_probe(), &Message::Ack)
            .expect_err("dead peer");
        assert_ne!(err.kind(), io::ErrorKind::Unsupported);
        assert!(pool.is_quarantined(addr));
        assert_eq!(pool.stats().connects, 0, "refused connects are not counted");

        // While quarantined the probe fails fast without touching the net.
        let before = pool.stats();
        pool.request(addr, RequestOptions::peer_probe(), &Message::Ack)
            .expect_err("still quarantined");
        let after = pool.stats();
        assert_eq!(
            after.quarantine_rejections,
            before.quarantine_rejections + 1
        );

        // Quarantine expires on its own.
        std::thread::sleep(Duration::from_millis(250));
        assert!(!pool.is_quarantined(addr));
    }

    #[test]
    fn origin_policy_retries_and_ignores_quarantine() {
        let addr = dead_addr();
        let pool = ConnectionPool::new(quick_config());
        // Quarantine the address via a failed probe…
        pool.request(addr, RequestOptions::peer_probe(), &Message::Ack)
            .expect_err("dead");
        assert!(pool.is_quarantined(addr));
        // …then confirm the origin policy still attempts (and retries).
        pool.request(addr, RequestOptions::origin(), &Message::Ack)
            .expect_err("still dead");
        let stats = pool.stats();
        assert_eq!(stats.retries, 2, "origin made its extra attempts");
        assert_eq!(stats.quarantine_rejections, 0);
    }

    #[test]
    fn recovery_clears_quarantine() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        drop(listener);
        let pool = ConnectionPool::new(quick_config());
        pool.request(addr, RequestOptions::peer_probe(), &Message::Ack)
            .expect_err("dead");
        std::thread::sleep(Duration::from_millis(250));

        // Peer comes back on the same port.
        let listener = TcpListener::bind(addr).expect("rebind");
        std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                let _ = wire::read_message(&mut stream);
                let _ = wire::write_message(&mut stream, &Message::Ack);
                // Hold the connection open until the test ends.
                let mut buf = [0u8; 1];
                let _ = stream.read(&mut buf);
            }
        });
        let reply = pool
            .request(addr, RequestOptions::peer_probe(), &Message::Ack)
            .expect("recovered");
        assert_eq!(reply, Message::Ack);
        assert!(!pool.is_quarantined(addr));
        assert_eq!(pool.quarantine_streak(addr), 0, "success resets the streak");
    }

    #[test]
    fn jitter_streams_diverge_across_seeds_and_replay_within_one() {
        let delays = |seed: u64| {
            let pool = ConnectionPool::new(PoolConfig {
                backoff_base: Duration::from_millis(8),
                backoff_cap: Duration::from_secs(1),
                ..PoolConfig::default().with_jitter_seed(seed)
            });
            (1..=8u32)
                .map(|a| pool.backoff_delay(a))
                .collect::<Vec<_>>()
        };
        let a = delays(1);
        let b = delays(2);
        let a2 = delays(1);
        assert_eq!(a, a2, "a pool's delay sequence is reproducible");
        assert_ne!(a, b, "different machines draw different jitter");
        // Jitter stays inside the documented [delay/2, delay) envelope.
        for (i, d) in a.iter().enumerate() {
            let exp = Duration::from_millis(8 << (i + 1)).min(Duration::from_secs(1));
            assert!(*d >= exp / 2 && *d < exp, "attempt {i}: {d:?} vs {exp:?}");
        }
    }

    #[test]
    fn quarantine_escalates_per_failure_and_caps() {
        let pool = ConnectionPool::new(PoolConfig {
            quarantine: Duration::from_millis(100),
            quarantine_cap: Duration::from_millis(400),
            ..quick_config()
        });
        assert_eq!(pool.quarantine_window(1), Duration::from_millis(100));
        assert_eq!(pool.quarantine_window(2), Duration::from_millis(200));
        assert_eq!(pool.quarantine_window(3), Duration::from_millis(400));
        assert_eq!(
            pool.quarantine_window(9),
            Duration::from_millis(400),
            "capped"
        );

        // Two real consecutive failures move the streak to 2.
        let addr = dead_addr();
        pool.request(addr, RequestOptions::peer_probe(), &Message::Ack)
            .expect_err("dead");
        assert_eq!(pool.quarantine_streak(addr), 1);
        std::thread::sleep(Duration::from_millis(150));
        pool.request(addr, RequestOptions::peer_probe(), &Message::Ack)
            .expect_err("still dead");
        assert_eq!(pool.quarantine_streak(addr), 2);
        assert!(pool.is_quarantined(addr));
        // Forgiveness (liveness recovery) resets everything at once.
        pool.forgive(addr);
        assert!(!pool.is_quarantined(addr));
        assert_eq!(pool.quarantine_streak(addr), 0);
    }

    #[test]
    fn expired_quarantine_admits_one_probe_at_a_time() {
        let addr = dead_addr();
        let pool = Arc::new(ConnectionPool::new(PoolConfig {
            // Slow connect timeout so the re-probe holds its slot long
            // enough for the second thread to observe it.
            connect_timeout: Duration::from_millis(400),
            quarantine: Duration::from_millis(50),
            ..quick_config()
        }));
        pool.request(addr, RequestOptions::peer_probe(), &Message::Ack)
            .expect_err("dead");
        std::thread::sleep(Duration::from_millis(80));
        assert!(!pool.is_quarantined(addr), "window expired");

        // First probe after expiry claims the slot (and will fail slowly);
        // a concurrent second probe must be refused instantly.
        let p2 = Arc::clone(&pool);
        let prober = std::thread::spawn(move || {
            p2.request(addr, RequestOptions::peer_probe(), &Message::Ack)
                .expect_err("still dead")
        });
        std::thread::sleep(Duration::from_millis(30));
        let start = Instant::now();
        let err = pool
            .request(addr, RequestOptions::peer_probe(), &Message::Ack)
            .expect_err("slot held");
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "refusal must be immediate, took {:?}",
            start.elapsed()
        );
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        prober.join().expect("prober");
        // The failed re-probe escalated the quarantine.
        assert_eq!(pool.quarantine_streak(addr), 2);
    }

    #[test]
    fn partition_blocks_and_heals() {
        let (addr, served) = ack_server(None);
        let pool = ConnectionPool::new(quick_config());
        pool.request(addr, RequestOptions::origin(), &Message::Ack)
            .expect("reachable");
        pool.block(addr);
        assert!(pool.is_blocked(addr));
        assert_eq!(pool.idle_count(addr), 0, "partition severs warm conns");
        let err = pool
            .request(addr, RequestOptions::origin(), &Message::Ack)
            .expect_err("partitioned");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(pool.stats().partition_rejections, 1);
        pool.unblock(addr);
        pool.request(addr, RequestOptions::origin(), &Message::Ack)
            .expect("healed");
        assert_eq!(served.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn injected_drop_fails_the_send_and_quarantines_probes() {
        let (addr, served) = ack_server(None);
        let pool = ConnectionPool::new(quick_config());
        pool.fault_switch()
            .set_drop_per_million(bh_netpoll::fault::PER_MILLION);
        let err = pool
            .request(addr, RequestOptions::peer_probe(), &Message::Ack)
            .expect_err("dropped");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(pool.stats().injected_drops, 1);
        assert!(pool.is_quarantined(addr), "a lost probe looks like death");
        assert_eq!(served.load(Ordering::SeqCst), 0, "nothing hit the wire");
        pool.fault_switch().clear();
        pool.forgive(addr);
        pool.request(addr, RequestOptions::peer_probe(), &Message::Ack)
            .expect("fault cleared");
    }

    #[test]
    fn poisoned_pool_fails_fast_and_stays_poisoned() {
        let (addr, served) = ack_server(None);
        let pool = ConnectionPool::new(quick_config());
        pool.request(addr, RequestOptions::origin(), &Message::Ack)
            .expect("up");
        pool.poison();
        pool.poison(); // idempotent
        let start = Instant::now();
        let err = pool
            .request(addr, RequestOptions::origin(), &Message::Ack)
            .expect_err("poisoned");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
        assert!(start.elapsed() < Duration::from_millis(50));
        assert!(pool.is_poisoned());
        assert_eq!(served.load(Ordering::SeqCst), 1);
    }
}
