//! Pooled peer/origin connections: keep-warm reuse, bounded exponential
//! backoff with deterministic jitter, and dead-peer quarantine.
//!
//! The seed prototype opened a fresh TCP connection for every peer probe,
//! origin fetch, and hint flush — faithful to 1998, but the dominant cost
//! once the daemon is asked to scale. The pool keeps a small set of idle
//! connections per remote warm and checks them out for one framed
//! request/reply round trip at a time, so a connection never carries
//! interleaved requests.
//!
//! Failure policy is per-request ([`RequestOptions`]), because the paper's
//! §3.2 contract is asymmetric:
//!
//! * **peer probes** get exactly one attempt and quarantine the peer on
//!   failure — a dead peer must cost at most one wasted probe, and while
//!   quarantined it costs none (the probe fails fast and the caller
//!   accounts a false positive exactly as if it had probed);
//! * **origin fetches** retry with backoff and ignore quarantine — the
//!   origin is the only copy of record, so giving up early turns a
//!   transient hiccup into a client-visible error.
//!
//! A *stale* pooled connection (peer restarted or idle-timed-out since
//! checkout) is retried once with a fresh connect without consuming an
//! attempt: the failure says nothing about the peer, only about the cached
//! socket.

use crate::wire::{self, Message};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Tuning knobs for a [`ConnectionPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Per-connect timeout.
    pub connect_timeout: Duration,
    /// Read/write timeout applied to every pooled stream.
    pub io_timeout: Duration,
    /// Idle connections kept warm per remote address.
    pub max_idle_per_peer: usize,
    /// First retry delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on any single retry delay.
    pub backoff_cap: Duration,
    /// How long a failed peer stays quarantined.
    pub quarantine: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(5),
            max_idle_per_peer: 4,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(200),
            quarantine: Duration::from_secs(2),
        }
    }
}

/// Per-request failure policy.
#[derive(Debug, Clone, Copy)]
pub struct RequestOptions {
    /// Fresh-connect attempts before giving up (min 1).
    pub max_attempts: u32,
    /// Quarantine the remote after the final failed attempt.
    pub quarantine_on_failure: bool,
    /// Fail fast (without touching the network) while the remote is
    /// quarantined.
    pub respect_quarantine: bool,
}

impl RequestOptions {
    /// Policy for peer cache probes: one attempt, quarantine on failure,
    /// fail fast while quarantined. Preserves the §3.2 "one wasted probe"
    /// bound for dead peers.
    pub fn peer_probe() -> Self {
        RequestOptions {
            max_attempts: 1,
            quarantine_on_failure: true,
            respect_quarantine: true,
        }
    }

    /// Policy for origin fetches and other must-reach traffic: retry with
    /// backoff, never quarantine, ignore quarantine state.
    pub fn origin() -> Self {
        RequestOptions {
            max_attempts: 3,
            quarantine_on_failure: false,
            respect_quarantine: false,
        }
    }
}

/// Counters exposed for tests and the load generator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fresh TCP connects performed.
    pub connects: u64,
    /// Requests served over a reused warm connection.
    pub reuses: u64,
    /// Retry attempts after a failed fresh connect or round trip.
    pub retries: u64,
    /// Requests refused immediately because the remote was quarantined.
    pub quarantine_rejections: u64,
}

/// A pooled stream plus its read buffer. The buffer lives with the stream:
/// a `BufReader` may read ahead, and any buffered bytes belong to this
/// connection's next reply, so the two are parked and checked out together.
#[derive(Debug)]
struct PooledConn {
    stream: TcpStream,
    reader: io::BufReader<TcpStream>,
}

impl PooledConn {
    fn new(stream: TcpStream) -> io::Result<Self> {
        let reader = io::BufReader::new(stream.try_clone()?);
        Ok(PooledConn { stream, reader })
    }
}

#[derive(Debug, Default)]
struct PeerState {
    idle: Vec<PooledConn>,
    quarantined_until: Option<Instant>,
}

/// A warm connection pool over every remote this node talks to.
#[derive(Debug)]
pub struct ConnectionPool {
    config: PoolConfig,
    peers: Mutex<HashMap<SocketAddr, PeerState>>,
    stats: Mutex<PoolStats>,
    jitter_seed: AtomicU64,
}

impl ConnectionPool {
    /// Creates an empty pool.
    pub fn new(config: PoolConfig) -> Self {
        ConnectionPool {
            config,
            peers: Mutex::new(HashMap::new()),
            stats: Mutex::new(PoolStats::default()),
            jitter_seed: AtomicU64::new(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        *self.stats.lock()
    }

    /// True while `addr` is inside its quarantine window.
    pub fn is_quarantined(&self, addr: SocketAddr) -> bool {
        let peers = self.peers.lock();
        peers
            .get(&addr)
            .and_then(|p| p.quarantined_until)
            .is_some_and(|until| Instant::now() < until)
    }

    /// Idle (warm) connections currently parked for `addr`.
    pub fn idle_count(&self, addr: SocketAddr) -> usize {
        self.peers.lock().get(&addr).map_or(0, |p| p.idle.len())
    }

    /// Closes all idle connections and forgets quarantine state.
    pub fn clear(&self) {
        self.peers.lock().clear();
    }

    /// Performs one framed request/reply round trip against `addr` under
    /// the given policy.
    ///
    /// # Errors
    ///
    /// Fails when the remote is quarantined (`respect_quarantine`), when
    /// every attempt errored, or when the reply cannot be decoded.
    pub fn request(
        &self,
        addr: SocketAddr,
        opts: RequestOptions,
        msg: &Message,
    ) -> io::Result<Message> {
        if opts.respect_quarantine && self.is_quarantined(addr) {
            self.stats.lock().quarantine_rejections += 1;
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("peer {addr} quarantined"),
            ));
        }

        // A stale pooled connection gets one free replay on a fresh socket:
        // its failure reflects the cached fd, not the remote.
        if let Some(stream) = self.checkout(addr) {
            match self.round_trip(stream, msg, addr) {
                Ok(reply) => {
                    self.stats.lock().reuses += 1;
                    return Ok(reply);
                }
                Err(_) => {
                    self.stats.lock().retries += 1;
                }
            }
        }

        let attempts = opts.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.stats.lock().retries += 1;
                std::thread::sleep(self.backoff_delay(attempt));
            }
            match self.connect(addr) {
                Ok(stream) => {
                    self.stats.lock().connects += 1;
                    match self.round_trip(stream, msg, addr) {
                        Ok(reply) => {
                            self.peers.lock().entry(addr).or_default().quarantined_until = None;
                            return Ok(reply);
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }

        if opts.quarantine_on_failure {
            let until = Instant::now() + self.config.quarantine;
            let mut peers = self.peers.lock();
            let peer = peers.entry(addr).or_default();
            peer.quarantined_until = Some(until);
            peer.idle.clear();
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("no attempts made")))
    }

    fn checkout(&self, addr: SocketAddr) -> Option<PooledConn> {
        self.peers.lock().get_mut(&addr)?.idle.pop()
    }

    fn connect(&self, addr: SocketAddr) -> io::Result<PooledConn> {
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;
        PooledConn::new(stream)
    }

    fn round_trip(
        &self,
        mut conn: PooledConn,
        msg: &Message,
        addr: SocketAddr,
    ) -> io::Result<Message> {
        wire::write_message(&mut conn.stream, msg)?;
        let reply = wire::read_message(&mut conn.reader)?;
        let mut peers = self.peers.lock();
        let peer = peers.entry(addr).or_default();
        if peer.idle.len() < self.config.max_idle_per_peer {
            peer.idle.push(conn);
        }
        Ok(reply)
    }

    /// Exponential backoff with deterministic jitter in `[delay/2, delay)`,
    /// capped. Deterministic so replays and tests are reproducible.
    fn backoff_delay(&self, attempt: u32) -> Duration {
        let base = self.config.backoff_base.as_micros() as u64;
        let cap = self.config.backoff_cap.as_micros() as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(16)).min(cap).max(1);
        let seed = self
            .jitter_seed
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(
                    s.wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407),
                )
            })
            .expect("fetch_update closure always returns Some");
        let jitter = seed % (exp / 2).max(1);
        Duration::from_micros(exp / 2 + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// Serves `requests_per_conn` Ack replies per accepted connection, then
    /// closes it. `None` keeps connections open until the client hangs up.
    fn ack_server(requests_per_conn: Option<usize>) -> (SocketAddr, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let served = Arc::new(AtomicUsize::new(0));
        let served2 = Arc::clone(&served);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                let served = Arc::clone(&served2);
                std::thread::spawn(move || {
                    let mut handled = 0;
                    loop {
                        if wire::read_message(&mut stream).is_err() {
                            break;
                        }
                        // Count before replying: the client may assert on
                        // the counter the instant its reply arrives.
                        served.fetch_add(1, Ordering::SeqCst);
                        if wire::write_message(&mut stream, &Message::Ack).is_err() {
                            break;
                        }
                        handled += 1;
                        if requests_per_conn.is_some_and(|limit| handled >= limit) {
                            break;
                        }
                    }
                });
            }
        });
        (addr, served)
    }

    fn quick_config() -> PoolConfig {
        PoolConfig {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(500),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            quarantine: Duration::from_millis(200),
            ..PoolConfig::default()
        }
    }

    #[test]
    fn second_request_reuses_the_warm_connection() {
        let (addr, _served) = ack_server(None);
        let pool = ConnectionPool::new(quick_config());
        for _ in 0..3 {
            let reply = pool
                .request(addr, RequestOptions::origin(), &Message::Ack)
                .expect("ack");
            assert_eq!(reply, Message::Ack);
        }
        let stats = pool.stats();
        assert_eq!(stats.connects, 1, "one connect serves all three requests");
        assert_eq!(stats.reuses, 2);
        assert_eq!(pool.idle_count(addr), 1);
    }

    #[test]
    fn stale_pooled_connection_is_replayed_on_a_fresh_socket() {
        let (addr, served) = ack_server(Some(1));
        let pool = ConnectionPool::new(quick_config());
        pool.request(addr, RequestOptions::origin(), &Message::Ack)
            .expect("first");
        // The server closed the connection after one request, but the pool
        // parked it. Give the close time to land, then request again: the
        // stale socket must be replaced transparently.
        std::thread::sleep(Duration::from_millis(50));
        pool.request(addr, RequestOptions::origin(), &Message::Ack)
            .expect("second");
        assert_eq!(pool.stats().connects, 2);
        assert_eq!(served.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn dead_peer_probe_fails_once_then_quarantines() {
        // Bind then drop to get an address that refuses connections.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let pool = ConnectionPool::new(quick_config());

        let err = pool
            .request(addr, RequestOptions::peer_probe(), &Message::Ack)
            .expect_err("dead peer");
        assert_ne!(err.kind(), io::ErrorKind::Unsupported);
        assert!(pool.is_quarantined(addr));
        assert_eq!(pool.stats().connects, 0, "refused connects are not counted");

        // While quarantined the probe fails fast without touching the net.
        let before = pool.stats();
        pool.request(addr, RequestOptions::peer_probe(), &Message::Ack)
            .expect_err("still quarantined");
        let after = pool.stats();
        assert_eq!(
            after.quarantine_rejections,
            before.quarantine_rejections + 1
        );

        // Quarantine expires on its own.
        std::thread::sleep(Duration::from_millis(250));
        assert!(!pool.is_quarantined(addr));
    }

    #[test]
    fn origin_policy_retries_and_ignores_quarantine() {
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let pool = ConnectionPool::new(quick_config());
        // Quarantine the address via a failed probe…
        pool.request(addr, RequestOptions::peer_probe(), &Message::Ack)
            .expect_err("dead");
        assert!(pool.is_quarantined(addr));
        // …then confirm the origin policy still attempts (and retries).
        pool.request(addr, RequestOptions::origin(), &Message::Ack)
            .expect_err("still dead");
        let stats = pool.stats();
        assert_eq!(stats.retries, 2, "origin made its extra attempts");
        assert_eq!(stats.quarantine_rejections, 0);
    }

    #[test]
    fn recovery_clears_quarantine() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        drop(listener);
        let pool = ConnectionPool::new(quick_config());
        pool.request(addr, RequestOptions::peer_probe(), &Message::Ack)
            .expect_err("dead");
        std::thread::sleep(Duration::from_millis(250));

        // Peer comes back on the same port.
        let listener = TcpListener::bind(addr).expect("rebind");
        std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                let _ = wire::read_message(&mut stream);
                let _ = wire::write_message(&mut stream, &Message::Ack);
                // Hold the connection open until the test ends.
                let mut buf = [0u8; 1];
                let _ = stream.read(&mut buf);
            }
        });
        let reply = pool
            .request(addr, RequestOptions::peer_probe(), &Message::Ack)
            .expect("recovered");
        assert_eq!(reply, Message::Ack);
        assert!(!pool.is_quarantined(addr));
    }
}
