//! Networked prototype of the hint protocol — the paper's Squid
//! augmentation (§3.2), reimplemented from scratch over TCP.
//!
//! The prototype mirrors the paper's implementation choices:
//!
//! * the hint module exposes the three interface commands **inform**,
//!   **invalidate**, and **find nearest** (§3.2);
//! * hint updates travel in *batches*, each update a fixed **20-byte
//!   record**: a 4-byte action, an 8-byte object identifier (low half of
//!   the MD5 of the URL), and an 8-byte machine identifier (IP address and
//!   port) — see [`wire::HintUpdate`];
//! * nodes flush update batches to their neighbors on a randomized period
//!   (uniform in `[0, max)`) to avoid the synchronization capture effects
//!   Floyd and Jacobson observed (§3.2);
//! * hints are stored as 16-byte fixed records in a 4-way set-associative
//!   store ([`bh_cache::HintCache`]);
//! * on a local miss a node consults only its **local** hint store, goes
//!   directly to the named peer, and falls back to the origin server on a
//!   false positive — misses never traverse a hierarchy.
//!
//! Threading: on Linux the node runs a sharded epoll engine — a fixed set
//! of shard threads owns the accepted sockets and a bounded worker pool
//! services requests that leave the process (peer probes, origin fetches)
//! through pooled, retrying connections (see `node::engine`). This echoes
//! the paper's event-driven Squid much more closely than the seed's
//! thread-per-connection daemon, which survives as the portable fallback
//! ([`node::ThreadingMode::Legacy`]) and as the baseline the `loadgen` benchmark
//! measures the sharded engine against.
//!
//! # Examples
//!
//! ```no_run
//! use bh_proto::{node::{CacheNode, NodeConfig}, origin::OriginServer};
//!
//! let origin = OriginServer::spawn("127.0.0.1:0").unwrap();
//! let node = CacheNode::spawn(NodeConfig::new("127.0.0.1:0", origin.addr())).unwrap();
//! let (source, body) = bh_proto::client::fetch(node.addr(), "http://x.test/a").unwrap();
//! println!("served from {source:?}: {} bytes", body.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod liveness;
pub mod node;
pub mod origin;
pub mod pool;
pub mod replay;
pub mod wire;

pub use client::{fetch, Source};
pub use node::{CacheNode, NodeConfig};
pub use origin::OriginServer;
