//! Deterministic fault-plan driver for a live mesh.
//!
//! A [`FaultPlan`] is a seeded schedule of fault windows — crash/restart,
//! partition, added latency, packet drop — positioned by **request
//! counts**, not wall-clock time. The load generator replays a trace
//! segment by segment: `pre` requests before the fault is injected,
//! `hold` requests while it is active, `post` requests after it is
//! lifted. Because every transition is pinned to a request offset, the
//! schedule a plan implies ([`FaultPlan::event_log`]) is a pure function
//! of the plan: the same seed produces a byte-identical event log on
//! every run, which is what makes chaos regressions diffable in CI.
//!
//! [`ChaosMesh`] owns a running origin + node mesh and knows how to apply
//! and lift each [`FaultKind`]. Every live control travels through the
//! mesh API namespace as a wire-level `Set` (the same remotely
//! addressable path `obs set` uses), so a chaos window exercises exactly
//! what an operator could do to a production mesh — nothing here reaches
//! into process-local pool or fault-switch handles:
//!
//! * **Crash** — the node is torn down with [`CacheNode::kill`]
//!   (pending hint updates discarded, no goodbye); lifting the window
//!   restarts it on the *same* port (so surviving hints stay addressable)
//!   and rebuilds its hint table by scheduling an anti-entropy resync
//!   via `Set control/resync`, polling `control/resync/runs` for
//!   completion. (The crash itself is process-local by nature.)
//! * **Partition** — both directions of a pair are severed with
//!   `Set pool/blocked/<addr> = true` on each side; the origin is never
//!   blocked, so partitioned nodes degrade to origin fetches rather
//!   than failing. Lifting writes `false`, which also forgives any
//!   quarantine the window accrued.
//! * **Latency** — `Set pool/fault/rx_latency_micros` / `..._tx_...` on
//!   one node's [`bh_netpoll::fault::FaultSwitch`].
//! * **Drop** — `Set pool/fault/drop_per_million`: probabilistic
//!   outbound send drops from the switch's seeded drop stream.

use crate::client::Connection;
use crate::node::{mesh_tree_for, CacheNode, NodeConfig, NodeStats};
use crate::origin::OriginServer;
use std::io;
use std::net::SocketAddr;

/// One fault to inject into a running mesh. Node indices refer to the
/// mesh's spawn order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// Crash-stop `node`; lifted by a warm restart on the same port plus
    /// an anti-entropy resync.
    Crash {
        /// Index of the node to kill.
        node: usize,
    },
    /// Sever the `a`↔`b` link in both directions.
    Partition {
        /// One side of the severed link.
        a: usize,
        /// The other side.
        b: usize,
    },
    /// Sever only the `from`→`to` direction: `from` cannot reach `to`,
    /// while `to` still reaches `from` (an asymmetric route failure).
    PartitionOneWay {
        /// The node whose outbound path is cut.
        from: usize,
        /// The unreachable destination.
        to: usize,
    },
    /// Add fixed service delay to everything `node` receives and sends.
    Latency {
        /// Index of the slowed node.
        node: usize,
        /// Injected delay per direction, microseconds.
        micros: u32,
    },
    /// Drop a fraction of `node`'s outbound sends.
    Drop {
        /// Index of the lossy node.
        node: usize,
        /// Drop rate in parts per million.
        per_million: u32,
    },
    /// Crash-stop the first *interior* (parent) node at hierarchy depth
    /// `level` — a role-targeted crash that only a hierarchical mesh
    /// ([`Topology::TwoLevel`]) can resolve to a concrete index. Its
    /// orphaned children must re-home to a fallback parent and hint
    /// propagation must resume through the adopter.
    CrashParent {
        /// Hierarchy depth of the targeted parent (0 = the top level).
        level: usize,
    },
    /// Turn `peer` byzantine: its outbound hint batches carry corrupted
    /// authenticator tags. Honest receivers must reject every batch,
    /// quarantine the peer once its failure streak crosses the
    /// threshold, and purge the hints it planted — with zero client
    /// errors, since hints are advisory. Lifting the window restores
    /// valid tags; the peer's next good batch heals the quarantine.
    CorruptHints {
        /// Index of the byzantine node.
        peer: usize,
    },
}

impl FaultKind {
    /// A stable one-line description used in event logs.
    pub fn describe(&self) -> String {
        match *self {
            FaultKind::Crash { node } => format!("crash node={node}"),
            FaultKind::Partition { a, b } => format!("partition a={a} b={b}"),
            FaultKind::PartitionOneWay { from, to } => {
                format!("partition_oneway from={from} to={to}")
            }
            FaultKind::Latency { node, micros } => format!("latency node={node} micros={micros}"),
            FaultKind::Drop { node, per_million } => {
                format!("drop node={node} per_million={per_million}")
            }
            FaultKind::CrashParent { level } => format!("crash_parent level={level}"),
            FaultKind::CorruptHints { peer } => format!("corrupt_hints peer={peer}"),
        }
    }

    /// Largest node index the fault touches. [`FaultKind::CrashParent`]
    /// names a role, not an index, and reports 0 — topology-aware
    /// validation ([`FaultPlan::validate_for`]) checks it instead.
    fn max_node(&self) -> usize {
        match *self {
            FaultKind::Crash { node }
            | FaultKind::Latency { node, .. }
            | FaultKind::Drop { node, .. } => node,
            FaultKind::CorruptHints { peer } => peer,
            FaultKind::Partition { a, b } => a.max(b),
            FaultKind::PartitionOneWay { from, to } => from.max(to),
            FaultKind::CrashParent { .. } => 0,
        }
    }
}

/// The shape of a [`ChaosMesh`]: how many nodes, and how they are wired
/// for hint propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Topology {
    /// Every node neighbors every other (the PR-3 mesh).
    Flat {
        /// Number of nodes.
        nodes: usize,
    },
    /// A two-level metadata hierarchy (§3.1.2): `parents` interior nodes
    /// neighbor each other; each parent has `children_per_parent` leaf
    /// children that flush hints only through their parent. Parents are
    /// spawned first (indices `0..parents`), then children in parent
    /// order, so index arithmetic is stable.
    TwoLevel {
        /// Interior (parent) nodes; at least 2 so orphans can re-home.
        parents: usize,
        /// Leaf children under each parent.
        children_per_parent: usize,
    },
}

impl Topology {
    /// Total node count.
    pub fn size(&self) -> usize {
        match *self {
            Topology::Flat { nodes } => nodes,
            Topology::TwoLevel {
                parents,
                children_per_parent,
            } => parents * (1 + children_per_parent),
        }
    }

    /// The spawn index of the first interior node at hierarchy depth
    /// `level`, if that depth has interior nodes. A two-level tree has
    /// exactly one interior depth (0, the parents).
    pub fn first_parent_at(&self, level: usize) -> Option<usize> {
        match *self {
            Topology::Flat { .. } => None,
            Topology::TwoLevel { parents, .. } => (level == 0 && parents > 0).then_some(0),
        }
    }

    /// The parent assigned to `index`, if `index` is a child.
    pub fn parent_of(&self, index: usize) -> Option<usize> {
        match *self {
            Topology::Flat { .. } => None,
            Topology::TwoLevel {
                parents,
                children_per_parent,
            } => {
                if index < parents || children_per_parent == 0 {
                    None
                } else {
                    Some((index - parents) / children_per_parent)
                }
            }
        }
    }

    /// The children assigned to `index`, empty for leaves and flat meshes.
    pub fn children_of(&self, index: usize) -> Vec<usize> {
        match *self {
            Topology::Flat { .. } => Vec::new(),
            Topology::TwoLevel {
                parents,
                children_per_parent,
            } => {
                if index >= parents {
                    return Vec::new();
                }
                let first = parents + index * children_per_parent;
                (first..first + children_per_parent).collect()
            }
        }
    }

    /// Checks the topology itself is well-formed.
    ///
    /// # Errors
    ///
    /// Returns a description of the defect.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Topology::Flat { nodes: 0 } => Err("flat mesh needs at least 1 node".into()),
            Topology::TwoLevel { parents, .. } if parents < 2 => {
                Err("two-level mesh needs at least 2 parents so orphans can re-home".into())
            }
            _ => Ok(()),
        }
    }
}

/// One fault window: `pre` healthy requests, inject, `hold` requests
/// under the fault, lift, `post` recovery requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultWindow {
    /// The fault this window injects.
    pub fault: FaultKind,
    /// Requests replayed before injection (baseline segment).
    pub pre: u64,
    /// Requests replayed while the fault is active.
    pub hold: u64,
    /// Requests replayed after the fault is lifted (recovery segment).
    pub post: u64,
}

/// A seeded, request-count-positioned schedule of fault windows.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// Seed for the workload replayed under the plan (and anything else
    /// the harness randomizes). The event schedule itself is already
    /// deterministic by construction.
    pub seed: u64,
    /// Windows executed in order, back to back.
    pub windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// The canonical CI smoke plan: one crash window and one partition
    /// window over a 4-node mesh.
    pub fn smoke(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            windows: vec![
                FaultWindow {
                    fault: FaultKind::Crash { node: 1 },
                    pre: 600,
                    hold: 600,
                    post: 600,
                },
                FaultWindow {
                    fault: FaultKind::Partition { a: 0, b: 2 },
                    pre: 300,
                    hold: 600,
                    post: 600,
                },
            ],
        }
    }

    /// Total requests the plan replays across every segment.
    pub fn total_requests(&self) -> u64 {
        self.windows.iter().map(|w| w.pre + w.hold + w.post).sum()
    }

    /// Checks every referenced node index against the mesh size and
    /// rejects degenerate windows. This is the *flat-mesh* check:
    /// role-targeted faults ([`FaultKind::CrashParent`]) are rejected
    /// here because a flat mesh has no parents — use
    /// [`FaultPlan::validate_for`] with a hierarchical topology.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid window.
    pub fn validate(&self, mesh_size: usize) -> Result<(), String> {
        self.validate_for(&Topology::Flat { nodes: mesh_size })
    }

    /// Topology-aware validation: like [`FaultPlan::validate`], but
    /// resolves role-targeted faults against `topology`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid window.
    pub fn validate_for(&self, topology: &Topology) -> Result<(), String> {
        topology.validate()?;
        let mesh_size = topology.size();
        if self.windows.is_empty() {
            return Err("plan has no fault windows".into());
        }
        for (i, w) in self.windows.iter().enumerate() {
            if w.fault.max_node() >= mesh_size {
                return Err(format!(
                    "window {i} ({}) references a node outside the {mesh_size}-node mesh",
                    w.fault.describe()
                ));
            }
            match w.fault {
                FaultKind::Partition { a, b } if a == b => {
                    return Err(format!(
                        "window {i}: partition endpoints must differ (got {a})"
                    ));
                }
                FaultKind::PartitionOneWay { from, to } if from == to => {
                    return Err(format!(
                        "window {i}: one-way partition endpoints must differ (got {from})"
                    ));
                }
                FaultKind::CrashParent { level } if topology.first_parent_at(level).is_none() => {
                    return Err(format!(
                        "window {i}: crash_parent level={level} needs a hierarchical \
                         mesh with interior nodes at that depth"
                    ));
                }
                _ => {}
            }
            if w.hold == 0 {
                return Err(format!(
                    "window {i}: hold segment must replay at least 1 request"
                ));
            }
        }
        Ok(())
    }

    /// Renders the deterministic event schedule the plan implies: one
    /// line per inject/lift, positioned by cumulative request offset.
    /// Depends on nothing but the plan, so two runs of the same plan
    /// produce byte-identical logs.
    pub fn event_log(&self) -> String {
        let mut out = format!("plan seed={} windows={}\n", self.seed, self.windows.len());
        let mut offset = 0u64;
        for (i, w) in self.windows.iter().enumerate() {
            offset += w.pre;
            out.push_str(&format!(
                "window {i}: inject {} at request {offset}\n",
                w.fault.describe()
            ));
            offset += w.hold;
            out.push_str(&format!(
                "window {i}: lift {} at request {offset}\n",
                w.fault.describe()
            ));
            offset += w.post;
        }
        out.push_str(&format!("plan complete at request {offset}\n"));
        out
    }
}

/// A running origin + full-mesh node cluster that a [`FaultPlan`] can be
/// applied to. Nodes are addressed by spawn index; a crashed slot holds
/// `None` until the window lifts.
pub struct ChaosMesh {
    origin: OriginServer,
    nodes: Vec<Option<CacheNode>>,
    /// Respawn configs with the concrete (post-bind) addresses, so a
    /// restart reclaims the crashed node's port and identity.
    configs: Vec<NodeConfig>,
    addrs: Vec<SocketAddr>,
    topology: Topology,
}

/// Node `i`'s hint wiring under `topology`:
/// `(neighbors, parent, children, fallback_parents)`.
fn wiring_for(
    topology: &Topology,
    addrs: &[SocketAddr],
    i: usize,
) -> (
    Vec<SocketAddr>,
    Option<SocketAddr>,
    Vec<SocketAddr>,
    Vec<SocketAddr>,
) {
    match *topology {
        Topology::Flat { .. } => {
            let neighbors = addrs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, a)| *a)
                .collect();
            (neighbors, None, Vec::new(), Vec::new())
        }
        Topology::TwoLevel { parents, .. } => {
            if i < parents {
                let neighbors = addrs[..parents]
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, a)| *a)
                    .collect();
                let children = topology
                    .children_of(i)
                    .into_iter()
                    .map(|c| addrs[c])
                    .collect();
                (neighbors, None, children, Vec::new())
            } else {
                let parent = topology.parent_of(i).map(|p| addrs[p]);
                (Vec::new(), parent, Vec::new(), addrs[..parents].to_vec())
            }
        }
    }
}

impl ChaosMesh {
    /// Spawns an origin and `n` nodes wired as a full mesh (every node
    /// neighbors every other, all sharing the same Plaxton membership).
    /// `tune` customizes each node's config after the origin is known —
    /// timeouts, heartbeat cadence, engine mode.
    ///
    /// # Errors
    ///
    /// Propagates origin/node spawn failures.
    pub fn spawn(n: usize, tune: impl Fn(NodeConfig) -> NodeConfig) -> io::Result<ChaosMesh> {
        Self::spawn_topology(Topology::Flat { nodes: n }, tune)
    }

    /// Spawns an origin plus a mesh shaped by `topology`. In a
    /// [`Topology::TwoLevel`] hierarchy, parents neighbor the other
    /// parents and flush down to their children; children flush only
    /// through their parent and carry every other parent as a re-homing
    /// fallback. Every node regardless of role monitors the *full*
    /// membership for liveness and shares the Plaxton membership, so a
    /// confirmed death is repaired by every survivor identically.
    ///
    /// # Errors
    ///
    /// Rejects invalid topologies; propagates origin/node spawn failures.
    pub fn spawn_topology(
        topology: Topology,
        tune: impl Fn(NodeConfig) -> NodeConfig,
    ) -> io::Result<ChaosMesh> {
        Self::spawn_indexed(topology, |_, config| tune(config))
    }

    /// Like [`ChaosMesh::spawn_topology`], but the tuner also receives
    /// the node's spawn index — needed for per-node state such as a
    /// [`NodeConfig::durability_dir`], which must be unique per node.
    ///
    /// # Errors
    ///
    /// Rejects invalid topologies; propagates origin/node spawn failures.
    pub fn spawn_indexed(
        topology: Topology,
        tune: impl Fn(usize, NodeConfig) -> NodeConfig,
    ) -> io::Result<ChaosMesh> {
        topology
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let origin = OriginServer::spawn("127.0.0.1:0")?;
        let n = topology.size();
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let config = tune(i, NodeConfig::new("127.0.0.1:0", origin.addr()));
            nodes.push(CacheNode::spawn(config)?);
        }
        let addrs: Vec<SocketAddr> = nodes.iter().map(|node| node.addr()).collect();
        let mut configs = Vec::with_capacity(n);
        for i in 0..n {
            let (neighbors, parent, children, _) = wiring_for(&topology, &addrs, i);
            let mut config = tune(i, NodeConfig::new(addrs[i].to_string(), origin.addr()));
            config.neighbors = neighbors;
            config.parent = parent;
            config.children = children;
            configs.push(config);
        }
        let mesh = ChaosMesh {
            origin,
            nodes: nodes.into_iter().map(Some).collect(),
            configs,
            addrs,
            topology,
        };
        for i in 0..n {
            if let Some(node) = mesh.node(i) {
                mesh.wire(i, node);
            }
        }
        Ok(mesh)
    }

    /// Applies node `index`'s full runtime wiring — hint topology,
    /// re-homing fallbacks, liveness peers, Plaxton membership. Called
    /// at spawn and again on every restart.
    fn wire(&self, index: usize, node: &CacheNode) {
        let (neighbors, parent, children, fallback) =
            wiring_for(&self.topology, &self.addrs, index);
        node.set_neighbors(neighbors);
        node.set_parent(parent);
        node.set_children(children);
        node.set_fallback_parents(fallback);
        match self.topology {
            Topology::Flat { .. } => node.set_liveness_peers(None),
            Topology::TwoLevel { .. } => {
                // Liveness is mesh-wide even though hint flushes follow
                // the tree: every survivor must confirm a death to keep
                // the repaired Plaxton trees in agreement.
                let others = self
                    .addrs
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != index)
                    .map(|(_, a)| *a)
                    .collect();
                node.set_liveness_peers(Some(others));
            }
        }
        node.set_mesh(&self.addrs);
    }

    /// The topology this mesh was spawned with.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Resolves a role-targeted fault to the concrete node index it
    /// names under this mesh's topology. Index-targeted faults pass
    /// through unchanged.
    pub fn resolve(&self, fault: FaultKind) -> FaultKind {
        match fault {
            FaultKind::CrashParent { level } => match self.topology.first_parent_at(level) {
                Some(node) => FaultKind::Crash { node },
                // Rejected by validate_for before any plan runs; resolving
                // anyway keeps inject/lift total.
                None => fault,
            },
            other => other,
        }
    }

    /// The origin server backing the mesh.
    pub fn origin(&self) -> &OriginServer {
        &self.origin
    }

    /// Every node's bound address, in spawn order (stable across crash
    /// and restart).
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// The node at `index`, or `None` while it is crashed.
    pub fn node(&self, index: usize) -> Option<&CacheNode> {
        self.nodes.get(index).and_then(|n| n.as_ref())
    }

    /// Index of a live node, preferring `preferred` — where a crashed
    /// node's clients reconnect during its window.
    pub fn live_node(&self, preferred: usize) -> Option<usize> {
        if self.node(preferred).is_some() {
            return Some(preferred);
        }
        (0..self.nodes.len()).find(|&i| self.node(i).is_some())
    }

    /// Per-node stats snapshots (`None` for crashed slots).
    pub fn stats(&self) -> Vec<Option<NodeStats>> {
        self.nodes
            .iter()
            .map(|n| n.as_ref().map(|n| n.stats()))
            .collect()
    }

    /// Per-node metrics-registry snapshots (`None` for crashed slots):
    /// every registered metric as a name-sorted `(name, value)` list.
    /// The registry-iteration surface dumps are built from — nothing is
    /// copied field by field.
    pub fn metric_snapshots(&self) -> Vec<Option<Vec<bh_obs::MetricEntry>>> {
        self.nodes
            .iter()
            .map(|n| n.as_ref().map(|n| n.metrics_snapshot()))
            .collect()
    }

    /// Runs one immediate heartbeat round on every live node.
    pub fn heartbeat_all(&self) {
        for node in self.nodes.iter().flatten() {
            node.heartbeat_now();
        }
    }

    /// Flushes pending hint updates on every live node.
    pub fn flush_all(&self) {
        for node in self.nodes.iter().flatten() {
            node.flush_updates_now();
        }
    }

    /// Crash-stops node `index` (no-op if already down).
    pub fn crash(&mut self, index: usize) {
        if let Some(node) = self.nodes[index].take() {
            node.kill();
        }
    }

    /// Restarts a crashed node on its original port, rewires it into the
    /// mesh, and rebuilds its hint table: a node with a durable hint log
    /// ([`NodeConfig::durability_dir`]) recovers by replaying it at
    /// spawn — no network traffic — and falls back to an anti-entropy
    /// resync driven through the mesh API control plane only when the
    /// replay recovered nothing. Returns the number of hint records
    /// recovered either way.
    ///
    /// # Errors
    ///
    /// Fails if the original port cannot be rebound or the scheduled
    /// resync never completes.
    pub fn restart(&mut self, index: usize) -> io::Result<usize> {
        if self.nodes[index].is_some() {
            return Ok(0);
        }
        let node = CacheNode::spawn(self.configs[index].clone())?;
        self.wire(index, &node);
        let recovered = match node.stats().hints_recovered_from_log {
            0 => resync_over_wire(node.addr())?,
            replayed => replayed as usize,
        };
        self.nodes[index] = Some(node);
        Ok(recovered)
    }

    /// Sends one control-plane write to the node at `index` over the
    /// wire. Crashed slots are skipped (there is nothing to configure
    /// and nothing listening).
    fn control_set(&self, index: usize, path: &str, value: &str) -> io::Result<()> {
        if self.nodes[index].is_none() {
            return Ok(());
        }
        Connection::open(self.addrs[index])?.meta_set(path, value)?;
        Ok(())
    }

    /// Writes every fault-switch knob on `index` back to its off value
    /// (the namespace spelling of `FaultSwitch::clear`).
    fn clear_faults(&self, index: usize) -> io::Result<()> {
        for knob in ["rx_latency_micros", "tx_latency_micros", "drop_per_million"] {
            self.control_set(index, &format!("mesh/nodes/self/pool/fault/{knob}"), "0")?;
        }
        self.control_set(
            index,
            "mesh/nodes/self/pool/fault/corrupt_hint_tags",
            "false",
        )
    }

    /// Applies `fault` to the running mesh. Everything except the crash
    /// itself is a wire-level namespace write.
    ///
    /// # Errors
    ///
    /// Propagates control-plane write failures.
    pub fn inject(&mut self, fault: FaultKind) -> io::Result<()> {
        match self.resolve(fault) {
            FaultKind::Crash { node } => self.crash(node),
            FaultKind::Partition { a, b } => {
                let (addr_a, addr_b) = (self.addrs[a], self.addrs[b]);
                self.control_set(a, &format!("mesh/nodes/self/pool/blocked/{addr_b}"), "true")?;
                self.control_set(b, &format!("mesh/nodes/self/pool/blocked/{addr_a}"), "true")?;
            }
            FaultKind::PartitionOneWay { from, to } => {
                // Asymmetric: only `from`'s outbound path to `to` is cut;
                // the reverse direction stays healthy.
                let addr_to = self.addrs[to];
                self.control_set(
                    from,
                    &format!("mesh/nodes/self/pool/blocked/{addr_to}"),
                    "true",
                )?;
            }
            FaultKind::Latency { node, micros } => {
                let micros = micros.to_string();
                self.control_set(
                    node,
                    "mesh/nodes/self/pool/fault/rx_latency_micros",
                    &micros,
                )?;
                self.control_set(
                    node,
                    "mesh/nodes/self/pool/fault/tx_latency_micros",
                    &micros,
                )?;
            }
            FaultKind::Drop { node, per_million } => {
                self.control_set(
                    node,
                    "mesh/nodes/self/pool/fault/drop_per_million",
                    &per_million.to_string(),
                )?;
            }
            FaultKind::CorruptHints { peer } => {
                self.control_set(peer, "mesh/nodes/self/pool/fault/corrupt_hint_tags", "true")?;
            }
            // `resolve` maps CrashParent to Crash on hierarchical meshes;
            // on a flat mesh (rejected at validation) it is a no-op.
            FaultKind::CrashParent { .. } => {}
        }
        Ok(())
    }

    /// Lifts `fault`, restoring the mesh to its pre-window wiring (and
    /// restarting the node a crash window killed).
    ///
    /// # Errors
    ///
    /// Propagates restart failures for crash windows.
    pub fn lift(&mut self, fault: FaultKind) -> io::Result<()> {
        match self.resolve(fault) {
            FaultKind::Crash { node } => {
                self.restart(node)?;
            }
            FaultKind::Partition { a, b } => {
                // `Set blocked = false` also forgives: the next probe
                // must get through instead of waiting out quarantine.
                let (addr_a, addr_b) = (self.addrs[a], self.addrs[b]);
                self.control_set(
                    a,
                    &format!("mesh/nodes/self/pool/blocked/{addr_b}"),
                    "false",
                )?;
                self.control_set(
                    b,
                    &format!("mesh/nodes/self/pool/blocked/{addr_a}"),
                    "false",
                )?;
            }
            FaultKind::PartitionOneWay { from, to } => {
                let addr_to = self.addrs[to];
                self.control_set(
                    from,
                    &format!("mesh/nodes/self/pool/blocked/{addr_to}"),
                    "false",
                )?;
            }
            FaultKind::Latency { node, .. } | FaultKind::Drop { node, .. } => {
                self.clear_faults(node)?;
            }
            FaultKind::CorruptHints { peer } => {
                // Stop corrupting; the receivers' quarantines lift on the
                // peer's next valid batch (the protocol-level heal), but
                // the mesh-level lift also unblocks it everywhere so the
                // post segment starts from restored wiring either way.
                self.clear_faults(peer)?;
                let addr = self.addrs[peer];
                for i in 0..self.nodes.len() {
                    if i != peer {
                        self.control_set(
                            i,
                            &format!("mesh/nodes/self/pool/blocked/{addr}"),
                            "false",
                        )?;
                    }
                }
            }
            FaultKind::CrashParent { .. } => {}
        }
        Ok(())
    }

    /// Gracefully shuts the whole mesh down.
    pub fn shutdown(mut self) {
        for node in self.nodes.iter_mut() {
            if let Some(node) = node.take() {
                node.shutdown();
            }
        }
    }
}

/// Drives a freshly restarted node's anti-entropy resync through the
/// mesh API control plane: `Set control/resync` schedules the pull on a
/// detached node thread, then the namespace counters are polled until
/// the run completes and report how many hint records it learned.
fn resync_over_wire(addr: SocketAddr) -> io::Result<usize> {
    let mut conn = Connection::open(addr)?;
    let before = read_counter(&mut conn, "mesh/nodes/self/control/resync/runs")?;
    conn.meta_set("mesh/nodes/self/control/resync", "1")?;
    // Bounded poll: a resync against a small mesh completes in
    // milliseconds; the cap (~10 s) only bounds a wedged run.
    for _ in 0..5000 {
        if read_counter(&mut conn, "mesh/nodes/self/control/resync/runs")? > before {
            let learned = read_counter(&mut conn, "mesh/nodes/self/control/resync/learned")?;
            return Ok(learned as usize);
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    Err(io::Error::other(format!(
        "scheduled resync on {addr} did not complete"
    )))
}

/// Reads one numeric namespace leaf.
fn read_counter(conn: &mut Connection, path: &str) -> io::Result<u64> {
    let entries = conn.meta_get(path)?;
    entries
        .first()
        .and_then(|e| e.value.parse().ok())
        .ok_or_else(|| io::Error::other(format!("non-numeric value at {path}")))
}

impl std::fmt::Debug for ChaosMesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosMesh")
            .field("addrs", &self.addrs)
            .field(
                "live",
                &self
                    .nodes
                    .iter()
                    .map(|n| n.is_some())
                    .collect::<Vec<bool>>(),
            )
            .finish()
    }
}

/// Analytic count of the Plaxton routing-table entries the mesh rewrites
/// when `dead` (a spawn index) is removed from a mesh over `members` —
/// the number every survivor's live repair must match.
pub fn analytic_churn_for(members: &[SocketAddr], dead: usize) -> usize {
    let mut tree = mesh_tree_for(members);
    tree.remove_node(dead).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_plan_validates_and_logs_deterministically() {
        let plan = FaultPlan::smoke(42);
        plan.validate(4).expect("smoke plan is valid for 4 nodes");
        assert_eq!(plan.total_requests(), 600 * 3 + 300 + 600 + 600);
        let log_a = plan.event_log();
        let log_b = FaultPlan::smoke(42).event_log();
        assert_eq!(log_a, log_b, "same seed, byte-identical schedule");
        assert!(log_a.contains("inject crash node=1 at request 600"));
        assert!(log_a.contains("lift crash node=1 at request 1200"));
        assert!(log_a.contains("inject partition a=0 b=2 at request 2100"));
        assert!(log_a.contains("plan complete at request 3300"));
        assert_ne!(log_a, FaultPlan::smoke(43).event_log());
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let mut plan = FaultPlan::smoke(1);
        assert!(plan.validate(2).is_err(), "node 2 outside a 2-node mesh");
        plan.windows[0].hold = 0;
        assert!(plan.validate(4).is_err(), "empty hold segment");
        plan.windows.clear();
        assert!(plan.validate(4).is_err(), "no windows");
        let twisted = FaultPlan {
            seed: 1,
            windows: vec![FaultWindow {
                fault: FaultKind::Partition { a: 1, b: 1 },
                pre: 0,
                hold: 1,
                post: 0,
            }],
        };
        assert!(twisted.validate(4).is_err(), "self-partition");
        let looped = FaultPlan {
            seed: 1,
            windows: vec![FaultWindow {
                fault: FaultKind::PartitionOneWay { from: 2, to: 2 },
                pre: 0,
                hold: 1,
                post: 0,
            }],
        };
        assert!(looped.validate(4).is_err(), "self one-way partition");
    }

    #[test]
    fn plans_round_trip_through_serde() {
        let plan = FaultPlan {
            seed: 7,
            windows: vec![
                FaultWindow {
                    fault: FaultKind::Latency {
                        node: 0,
                        micros: 500,
                    },
                    pre: 10,
                    hold: 20,
                    post: 30,
                },
                FaultWindow {
                    fault: FaultKind::Drop {
                        node: 3,
                        per_million: 250_000,
                    },
                    pre: 1,
                    hold: 2,
                    post: 3,
                },
                FaultWindow {
                    fault: FaultKind::PartitionOneWay { from: 1, to: 2 },
                    pre: 5,
                    hold: 5,
                    post: 5,
                },
                FaultWindow {
                    fault: FaultKind::CorruptHints { peer: 2 },
                    pre: 4,
                    hold: 8,
                    post: 4,
                },
            ],
        };
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(plan, back);
    }
}
