//! Standalone origin server daemon.
//!
//! ```text
//! bh-origin [--bind 127.0.0.1:8800]
//! ```

use bh_proto::origin::OriginServer;

fn main() -> std::io::Result<()> {
    let mut bind = "127.0.0.1:8800".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--bind" => bind = args.next().expect("--bind takes an address"),
            "--help" | "-h" => {
                println!("usage: bh-origin [--bind addr:port]");
                return Ok(());
            }
            other => panic!("unknown flag {other}"),
        }
    }
    let server = OriginServer::spawn(&bind[..])?;
    println!("origin server listening on {}", server.addr());
    println!("unknown URLs are served with deterministic synthetic bodies;");
    println!("install explicit content with the OriginPut control message.");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(5));
        eprintln!("[origin] served {} requests", server.request_count());
    }
}
