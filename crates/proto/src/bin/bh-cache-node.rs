//! Standalone cache-node daemon: the paper's hint-augmented proxy.
//!
//! ```text
//! bh-cache-node --origin 127.0.0.1:8800 \
//!     [--bind 127.0.0.1:8801] \
//!     [--neighbor addr:port]... \
//!     [--data-mb 64] [--hint-mb 4] [--flush-secs 60]
//! ```

use bh_proto::node::{CacheNode, NodeConfig};
use bh_simcore::ByteSize;
use std::time::Duration;

fn main() -> std::io::Result<()> {
    let mut bind = "127.0.0.1:8801".to_string();
    let mut origin: Option<String> = None;
    let mut neighbors = Vec::new();
    let mut data_mb = 64u64;
    let mut hint_mb = 4u64;
    let mut flush_secs = 60u64;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("{flag} takes a value"))
        };
        match flag.as_str() {
            "--bind" => bind = value(),
            "--origin" => origin = Some(value()),
            "--neighbor" => neighbors.push(value().parse().expect("neighbor addr:port")),
            "--data-mb" => data_mb = value().parse().expect("--data-mb takes MB"),
            "--hint-mb" => hint_mb = value().parse().expect("--hint-mb takes MB"),
            "--flush-secs" => flush_secs = value().parse().expect("--flush-secs takes seconds"),
            "--help" | "-h" => {
                println!(
                    "usage: bh-cache-node --origin addr:port [--bind addr:port] \
                     [--neighbor addr:port]... [--data-mb N] [--hint-mb N] [--flush-secs N]"
                );
                return Ok(());
            }
            other => panic!("unknown flag {other}"),
        }
    }
    let origin = origin
        .expect("--origin is required")
        .parse()
        .expect("origin addr:port");

    let mut config = NodeConfig::new(bind, origin)
        .with_neighbors(neighbors)
        .with_data_capacity(ByteSize::from_mb(data_mb))
        .with_flush_max(Duration::from_secs(flush_secs.max(1)));
    config.hint_capacity = ByteSize::from_mb(hint_mb);

    let node = CacheNode::spawn(config)?;
    println!(
        "cache node listening on {} (machine id {:#018x})",
        node.addr(),
        node.machine_id().0
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(10));
        eprintln!("[cache {}] {:?}", node.addr(), node.stats());
    }
}
