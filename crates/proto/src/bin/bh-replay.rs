//! Replay a synthetic workload (or a previously archived trace) against a
//! live cache cluster.
//!
//! ```text
//! bh-replay --node 127.0.0.1:8801 --node 127.0.0.1:8802 \
//!     [--requests 10000] [--seed 42] [--trace dec|berkeley|prodigy|small]
//! ```

use bh_proto::replay::{replay, ReplayConfig};
use bh_trace::{TraceGenerator, WorkloadSpec};

fn main() -> std::io::Result<()> {
    let mut nodes = Vec::new();
    let mut requests = 10_000u64;
    let mut seed = 42u64;
    let mut trace = "small".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("{flag} takes a value"))
        };
        match flag.as_str() {
            "--node" => nodes.push(value().parse().expect("node addr:port")),
            "--requests" => requests = value().parse().expect("--requests takes a count"),
            "--seed" => seed = value().parse().expect("--seed takes an integer"),
            "--trace" => trace = value().to_lowercase(),
            "--help" | "-h" => {
                println!("usage: bh-replay --node addr:port [--node ...] [--requests N] [--seed N] [--trace name]");
                return Ok(());
            }
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(!nodes.is_empty(), "--node is required");

    let spec = match trace.as_str() {
        "dec" => WorkloadSpec::dec(),
        "berkeley" => WorkloadSpec::berkeley(),
        "prodigy" => WorkloadSpec::prodigy(),
        _ => WorkloadSpec::small(),
    }
    .with_requests(requests);

    eprintln!(
        "replaying {} requests of the {} workload against {} node(s)...",
        requests,
        spec.name,
        nodes.len()
    );
    let mut config = ReplayConfig::flat_out(nodes);
    config.clients_per_l1 = spec.clients_per_l1;
    config.dynamic_client_ids = spec.dynamic_client_ids;
    let started = std::time::Instant::now();
    let report = replay(&config, TraceGenerator::new(&spec, seed))?;
    let secs = started.elapsed().as_secs_f64();

    println!("requests       {}", report.requests);
    println!(
        "local hits     {} ({:.1}%)",
        report.local_hits,
        100.0 * report.local_hits as f64 / report.requests.max(1) as f64
    );
    println!(
        "peer hits      {} ({:.1}%)",
        report.peer_hits,
        100.0 * report.peer_hits as f64 / report.requests.max(1) as f64
    );
    println!("origin fetches {}", report.origin_fetches);
    println!("errors         {}", report.errors);
    println!("bytes          {}", report.bytes);
    println!("hit ratio      {:.3}", report.hit_ratio());
    println!(
        "throughput     {:.0} req/s",
        report.requests as f64 / secs.max(1e-9)
    );
    Ok(())
}
