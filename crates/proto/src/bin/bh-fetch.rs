//! CLI client: fetch URLs through a cache node and report the data path.
//!
//! ```text
//! bh-fetch --node 127.0.0.1:8801 http://example.test/a http://example.test/b
//! ```

use bh_proto::client::Connection;

fn main() -> std::io::Result<()> {
    let mut node: Option<String> = None;
    let mut urls = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--node" => node = Some(args.next().expect("--node takes addr:port")),
            "--help" | "-h" => {
                println!("usage: bh-fetch --node addr:port URL [URL...]");
                return Ok(());
            }
            url => urls.push(url.to_string()),
        }
    }
    let node = node
        .expect("--node is required")
        .parse()
        .expect("node addr:port");
    assert!(!urls.is_empty(), "at least one URL required");

    let mut conn = Connection::open(node)?;
    for url in &urls {
        match conn.fetch(url) {
            Ok((source, body)) => {
                println!("{url}: {} bytes via {source:?}", body.len());
            }
            Err(e) => println!("{url}: ERROR {e}"),
        }
    }
    Ok(())
}
