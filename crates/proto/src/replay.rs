//! Replay a workload against a live cache cluster.
//!
//! The simulator evaluates strategies analytically; this module closes the
//! loop by driving the *same* synthetic workloads (or parsed logs) through
//! real [`crate::node::CacheNode`] daemons over TCP, the way the paper's
//! prototype was exercised by live traffic. Time is compressed: the trace's
//! inter-arrival gaps are divided by a speedup factor (or ignored for
//! maximum-throughput replay), and requests are issued from one connection
//! per L1 node, mirroring a proxy's request funnel.

use crate::client::{Connection, Source};
use crate::wire::MachineId;
use bh_simcore::stats::LatencyStats;
use bh_trace::TraceRecord;
use bytes::Bytes;
use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;

/// Replay configuration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Map of L1 group → cache-node address. Clients of group *g* send to
    /// `nodes[g % nodes.len()]`.
    pub nodes: Vec<SocketAddr>,
    /// Virtual-to-wall-clock speedup; `None` replays as fast as possible.
    pub speedup: Option<f64>,
    /// Clients per L1 group (for the client→group mapping).
    pub clients_per_l1: u32,
    /// Whether client IDs encode their group modularly (Prodigy-style
    /// dynamic IDs) instead of in blocks.
    pub dynamic_client_ids: bool,
    /// The origin server clients fall back to when a node's admission
    /// control answers `Redirect`. `None` counts a redirect as an error
    /// (the workload was not expected to saturate anything).
    pub origin: Option<SocketAddr>,
}

impl ReplayConfig {
    /// Maximum-throughput replay against `nodes` with the default (block)
    /// client mapping.
    pub fn flat_out(nodes: Vec<SocketAddr>) -> Self {
        ReplayConfig {
            nodes,
            speedup: None,
            clients_per_l1: 256,
            dynamic_client_ids: false,
            origin: None,
        }
    }

    /// Sets the origin fallback for redirect replies.
    pub fn with_origin(mut self, origin: SocketAddr) -> Self {
        self.origin = Some(origin);
        self
    }

    fn node_for(&self, client: bh_trace::ClientId) -> SocketAddr {
        let group = if self.dynamic_client_ids {
            client.0 as usize
        } else {
            (client.0 / self.clients_per_l1) as usize
        };
        self.nodes[group % self.nodes.len()]
    }
}

/// Outcome counts from a replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Requests issued.
    pub requests: u64,
    /// Served from the contacted node's cache.
    pub local_hits: u64,
    /// Served by a peer via direct transfer.
    pub peer_hits: u64,
    /// Served by the origin.
    pub origin_fetches: u64,
    /// Requests a saturated node turned away with a redirect reply; each
    /// then completed (or failed) against the origin directly, so this is
    /// *not* part of the requests = local + peer + origin + errors
    /// conservation sum.
    pub redirects: u64,
    /// Requests that failed outright (origin unreachable etc.).
    pub errors: u64,
    /// Bytes delivered to clients.
    pub bytes: u64,
    /// Per-peer transfer counts, keyed by supplying machine. Ordered so
    /// any report that reaches an artifact iterates deterministically.
    pub per_peer: BTreeMap<u64, u64>,
}

impl ReplayReport {
    /// Request hit ratio (local + peer).
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.local_hits + self.peer_hits) as f64 / self.requests as f64
        }
    }

    /// Absorbs another report's counts (merging per-thread results).
    pub fn merge(&mut self, other: &ReplayReport) {
        self.requests += other.requests;
        self.local_hits += other.local_hits;
        self.peer_hits += other.peer_hits;
        self.origin_fetches += other.origin_fetches;
        self.redirects += other.redirects;
        self.errors += other.errors;
        self.bytes += other.bytes;
        for (peer, n) in &other.per_peer {
            *self.per_peer.entry(*peer).or_insert(0) += n;
        }
    }
}

/// Outcome of a [`replay_concurrent`] run: merged counts plus the
/// end-to-end latency distribution and the wall-clock the replay took.
#[derive(Debug, Clone, Default)]
pub struct ConcurrentReplayReport {
    /// Merged outcome counts across all client threads.
    pub report: ReplayReport,
    /// Per-request end-to-end latency samples (seconds).
    pub latency: LatencyStats,
    /// Wall-clock duration of the whole replay.
    pub wall_seconds: f64,
}

impl ConcurrentReplayReport {
    /// Aggregate throughput in requests per second.
    pub fn requests_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.report.requests as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Fetches `url` from `addr` through the per-thread connection pool,
/// reconnecting on the next request if this one broke the connection.
fn fetch_pooled(
    conns: &mut BTreeMap<SocketAddr, Connection>,
    addr: SocketAddr,
    url: &str,
) -> io::Result<(Source, Bytes)> {
    match conns.entry(addr) {
        std::collections::btree_map::Entry::Occupied(mut e) => {
            let res = e.get_mut().fetch(url);
            if res.is_err() {
                // Drop the broken connection; the next request to this
                // node reconnects.
                e.remove();
            }
            res
        }
        std::collections::btree_map::Entry::Vacant(e) => match Connection::open(addr) {
            Ok(conn) => e.insert(conn).fetch(url),
            Err(err) => Err(err),
        },
    }
}

/// Completes a redirected request against the origin directly, or fails
/// it when the replay has no origin configured.
fn follow_redirect(
    config: &ReplayConfig,
    conns: &mut BTreeMap<SocketAddr, Connection>,
    url: &str,
) -> io::Result<(Source, Bytes)> {
    match config.origin {
        Some(origin) => fetch_pooled(conns, origin, url),
        None => Err(io::Error::other(
            "node redirected to origin but the replay has no origin configured",
        )),
    }
}

/// Counts one successful fetch outcome into `report`.
fn count_outcome(report: &mut ReplayReport, source: Source, body: &Bytes) {
    report.bytes += body.len() as u64;
    match source {
        Source::Local => report.local_hits += 1,
        Source::Peer(MachineId(m)) => {
            report.peer_hits += 1;
            *report.per_peer.entry(m).or_insert(0) += 1;
        }
        // A direct origin fetch after a redirect lands here too (the
        // origin answers `served_by: Origin`); the Redirected arm only
        // fires if the redirect target itself redirected, which the
        // origin never does — counted as an origin fetch to keep the
        // conservation sum intact.
        Source::Origin | Source::Redirected => report.origin_fetches += 1,
    }
}

/// Replays `records` against the cluster in `config`, in trace order.
///
/// Uncachable/error records are skipped (they never reach caches in the
/// simulator either). One persistent connection per node is used; requests
/// are serialized in trace order, which is what a single-threaded
/// trace-replay harness of the era did.
///
/// # Errors
///
/// Fails on connection errors to the cache nodes themselves; per-request
/// upstream failures are counted in [`ReplayReport::errors`] instead.
pub fn replay(
    config: &ReplayConfig,
    records: impl IntoIterator<Item = TraceRecord>,
) -> io::Result<ReplayReport> {
    assert!(
        !config.nodes.is_empty(),
        "replay needs at least one cache node"
    );
    let mut conns: BTreeMap<SocketAddr, Connection> = BTreeMap::new();
    let mut report = ReplayReport::default();
    let mut last_time: Option<bh_simcore::SimTime> = None;

    for r in records {
        if !r.is_cacheable() {
            continue;
        }
        if let (Some(speedup), Some(prev)) = (config.speedup, last_time) {
            let gap = r.time.saturating_since(prev).as_secs_f64() / speedup;
            if gap > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(gap.min(1.0)));
            }
        }
        last_time = Some(r.time);

        let addr = config.node_for(r.client);
        let url = r.object.synthetic_url();
        let conn = match conns.entry(addr) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(e) => e.insert(Connection::open(addr)?),
        };
        report.requests += 1;
        let mut outcome = conn.fetch(&url);
        if matches!(outcome, Ok((Source::Redirected, _))) {
            report.redirects += 1;
            outcome = follow_redirect(config, &mut conns, &url);
        }
        match outcome {
            Ok((source, body)) => count_outcome(&mut report, source, &body),
            Err(_) => report.errors += 1,
        }
    }
    Ok(report)
}

/// Replays `records` from `concurrency` closed-loop client threads.
///
/// The trace is partitioned by client ID (`client % concurrency`), so each
/// trace client's requests stay in order on one thread while different
/// clients proceed in parallel — the multi-user load a proxy actually sees.
/// Each thread keeps one persistent connection per target node, issues its
/// next request as soon as the previous reply lands (closed loop), and
/// accumulates its own counters and latency samples; the harness merges
/// them when every thread has drained its share.
///
/// Inter-arrival gaps are ignored (`speedup` does not apply): concurrent
/// replay is a load generator, not a timing-faithful reenactment.
/// Per-request upstream failures — including a cache node dying mid-run —
/// are counted in [`ReplayReport::errors`], never panicking the harness; a
/// thread that loses its connection reconnects for the next request.
///
/// # Errors
///
/// Fails only if a worker thread panics (a harness bug, not a workload
/// outcome).
pub fn replay_concurrent(
    config: &ReplayConfig,
    records: &[TraceRecord],
    concurrency: usize,
) -> io::Result<ConcurrentReplayReport> {
    assert!(
        !config.nodes.is_empty(),
        "replay needs at least one cache node"
    );
    let concurrency = concurrency.max(1);
    let started = std::time::Instant::now();

    let merged = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|worker| {
                scope.spawn(move |_| {
                    let mut conns: BTreeMap<SocketAddr, Connection> = BTreeMap::new();
                    let mut report = ReplayReport::default();
                    let mut latency = LatencyStats::new();
                    for r in records
                        .iter()
                        .filter(|r| r.client.0 as usize % concurrency == worker)
                    {
                        if !r.is_cacheable() {
                            continue;
                        }
                        let addr = config.node_for(r.client);
                        let url = r.object.synthetic_url();
                        report.requests += 1;
                        let begin = std::time::Instant::now();
                        let mut outcome = fetch_pooled(&mut conns, addr, &url);
                        if matches!(outcome, Ok((Source::Redirected, _))) {
                            // Admission control turned us away; the
                            // latency sample covers the full client
                            // experience, redirect hop included.
                            report.redirects += 1;
                            outcome = follow_redirect(config, &mut conns, &url);
                        }
                        match outcome {
                            Ok((source, body)) => {
                                latency.record(begin.elapsed().as_secs_f64());
                                count_outcome(&mut report, source, &body);
                            }
                            Err(_) => report.errors += 1,
                        }
                    }
                    (report, latency)
                })
            })
            .collect();
        let mut merged = ConcurrentReplayReport::default();
        for handle in handles {
            let (report, latency) = handle.join().expect("replay worker panicked");
            merged.report.merge(&report);
            merged.latency.merge(&latency);
        }
        merged
    })
    .map_err(|_| io::Error::other("replay worker panicked"))?;

    let mut merged = merged;
    merged.wall_seconds = started.elapsed().as_secs_f64();
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{CacheNode, NodeConfig};
    use crate::origin::OriginServer;
    use bh_trace::{TraceGenerator, WorkloadSpec};
    use std::time::Duration;

    fn cluster(n: usize) -> (OriginServer, Vec<CacheNode>) {
        let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
        let nodes: Vec<CacheNode> = (0..n)
            .map(|_| {
                CacheNode::spawn(
                    NodeConfig::new("127.0.0.1:0", origin.addr())
                        .with_flush_max(Duration::from_millis(5))
                        .with_data_capacity(bh_simcore::ByteSize::from_mb(256)),
                )
                .expect("node")
            })
            .collect();
        let addrs: Vec<SocketAddr> = nodes.iter().map(|x| x.addr()).collect();
        for (i, node) in nodes.iter().enumerate() {
            node.set_neighbors(
                addrs
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, a)| *a)
                    .collect(),
            );
        }
        (origin, nodes)
    }

    #[test]
    fn replay_conserves_requests_and_finds_reuse() {
        let (origin, nodes) = cluster(2);
        let spec = WorkloadSpec::small().with_requests(400).with_clients(512);
        let records: Vec<TraceRecord> = TraceGenerator::new(&spec, 31).collect();
        let cacheable = records.iter().filter(|r| r.is_cacheable()).count() as u64;

        let config = ReplayConfig::flat_out(nodes.iter().map(|n| n.addr()).collect());
        let report = replay(&config, records).expect("replay");

        assert_eq!(report.requests, cacheable);
        assert_eq!(
            report.local_hits + report.peer_hits + report.origin_fetches + report.errors,
            report.requests
        );
        assert_eq!(report.errors, 0);
        assert!(
            report.local_hits > 0,
            "repeat references must hit locally: {report:?}"
        );
        assert!(report.bytes > 0);
        // The origin saw exactly the origin_fetches.
        assert_eq!(origin.request_count(), report.origin_fetches);
        assert!(report.hit_ratio() > 0.0);
    }

    #[test]
    fn concurrent_replay_conserves_requests_and_reports_latency() {
        let (origin, nodes) = cluster(2);
        let spec = WorkloadSpec::small().with_requests(500).with_clients(512);
        let records: Vec<TraceRecord> = TraceGenerator::new(&spec, 33).collect();
        let cacheable = records.iter().filter(|r| r.is_cacheable()).count() as u64;

        let config = ReplayConfig::flat_out(nodes.iter().map(|n| n.addr()).collect());
        let out = replay_concurrent(&config, &records, 8).expect("replay");

        assert_eq!(out.report.requests, cacheable);
        assert_eq!(
            out.report.local_hits
                + out.report.peer_hits
                + out.report.origin_fetches
                + out.report.errors,
            out.report.requests
        );
        assert_eq!(out.report.errors, 0);
        assert_eq!(out.latency.count() as u64, out.report.requests);
        assert!(out.latency.p99() >= out.latency.p50());
        assert!(out.requests_per_second() > 0.0);
        assert_eq!(origin.request_count(), out.report.origin_fetches);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn saturated_node_redirects_to_origin() {
        // A zero high-water mark rejects every Get that would queue, so
        // each miss comes back `Redirect` and the client completes it
        // against the origin directly — no errors, conservation intact.
        let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
        let node = CacheNode::spawn(
            NodeConfig::new("127.0.0.1:0", origin.addr()).with_admission_high_water(0),
        )
        .expect("node");
        let spec = WorkloadSpec::small().with_requests(200).with_clients(64);
        let records: Vec<TraceRecord> = TraceGenerator::new(&spec, 35).collect();
        let cacheable = records.iter().filter(|r| r.is_cacheable()).count() as u64;

        let config = ReplayConfig::flat_out(vec![node.addr()]).with_origin(origin.addr());
        let report = replay(&config, records).expect("replay");

        assert_eq!(report.requests, cacheable);
        assert_eq!(report.errors, 0, "redirects must not surface as errors");
        assert!(
            report.redirects > 0,
            "zero high-water must reject: {report:?}"
        );
        assert_eq!(
            report.local_hits + report.peer_hits + report.origin_fetches,
            report.requests,
            "every redirected request completes at the origin"
        );
        let stats = node.stats();
        assert_eq!(stats.admission_rejects, report.redirects);
        assert!(stats.queue_saturation_events >= 1);
    }

    #[test]
    fn replay_across_nodes_uses_peer_transfers() {
        let (_origin, nodes) = cluster(2);
        // A trace with heavy cross-group sharing: same objects from clients
        // of both groups.
        let spec = WorkloadSpec::small()
            .with_requests(600)
            .with_clients(512)
            .with_p_new(0.05)
            .with_p_local(0.0);
        let records: Vec<TraceRecord> = TraceGenerator::new(&spec, 32).collect();
        let config = ReplayConfig::flat_out(nodes.iter().map(|n| n.addr()).collect());
        // Give the randomized flusher time to move hints while we replay.
        let report = replay(&config, records).expect("replay");
        assert!(
            report.peer_hits > 0,
            "cross-group reuse should produce direct peer transfers: {report:?}"
        );
        assert!(!report.per_peer.is_empty());
    }
}
