//! The mesh meta lens: one path-addressed namespace over a live node.
//!
//! Every node serves a virtual tree rooted at `mesh/nodes/<id>` (its own
//! id, or the `self` alias) over the [`Message::MetaRequest`] /
//! [`Message::MetaReply`] frames. Reads answer from the obs registry, the
//! trace ring, the hint shards, and the pool; writes are the control
//! plane — drain, fault knobs, partition blocks, resync, flush. The
//! `meta/` prefix answers *about* paths: what a path is and which ops it
//! supports (the StructFS meta-lens shape — for data path `P`, `meta/P`
//! describes `P`).
//!
//! Two contracts shape everything here:
//!
//! * **Determinism** — every `List` is sorted, and listings whose values
//!   are measured (metrics, pool stats) carry only static text (units,
//!   or nothing), so `List` output is byte-identical across seeded runs
//!   regardless of shard count or timing. `Get` is the value-bearing op.
//! * **Shard-thread safety** — the resolver runs inline on epoll shard
//!   threads, which never perform outbound I/O. Every read is purely
//!   local; the two writes that imply network work (`control/resync`,
//!   `control/flush`) detach onto a named thread and report
//!   `scheduled`, with completion observable at
//!   `control/resync/runs` / `control/resync/learned`.

use super::{flush_once, resync_now, Inner};
use crate::wire::{MachineId, Message, MetaEntry, MetaOp, MetaStatus};
use bh_obs::span;
use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Every route this namespace version serves: `(pattern, ops, help)`.
/// Segments in angle brackets are wildcards. The table is the single
/// source of truth for `meta/` capability discovery; it is sorted and
/// static, so `List meta` is byte-identical everywhere and forever
/// (within [`crate::wire::META_API_VERSION`]).
const ROUTES: &[(&str, &str, &str)] = &[
    (
        "mesh/nodes",
        "list",
        "the serving node (id = path, value = addr)",
    ),
    (
        "mesh/nodes/<id>",
        "list",
        "branches of one node's namespace",
    ),
    ("mesh/nodes/<id>/control", "list", "control-plane switches"),
    (
        "mesh/nodes/<id>/control/drain",
        "get,set",
        "true turns every client Get away with a Redirect",
    ),
    (
        "mesh/nodes/<id>/control/flush",
        "set",
        "schedule an immediate hint flush to all flush targets",
    ),
    (
        "mesh/nodes/<id>/control/resync",
        "set",
        "schedule an anti-entropy pull; poll runs/learned below",
    ),
    (
        "mesh/nodes/<id>/control/resync/learned",
        "get",
        "hint records learned across completed resyncs",
    ),
    (
        "mesh/nodes/<id>/control/resync/runs",
        "get",
        "completed namespace-triggered resyncs",
    ),
    (
        "mesh/nodes/<id>/hints",
        "list",
        "hint store as 16-hex digests",
    ),
    (
        "mesh/nodes/<id>/hints/<digest>",
        "get",
        "nearest known location of one object digest",
    ),
    (
        "mesh/nodes/<id>/metrics",
        "get,list",
        "obs registry: List = names+units, Get = full scrape",
    ),
    (
        "mesh/nodes/<id>/metrics/<name>",
        "get",
        "one metric's value",
    ),
    ("mesh/nodes/<id>/pool", "list", "outbound connection pool"),
    (
        "mesh/nodes/<id>/pool/blocked/<addr>",
        "get,set",
        "partition block toward addr (set false also forgives)",
    ),
    (
        "mesh/nodes/<id>/pool/fault",
        "list",
        "fault-injection knobs with current values",
    ),
    (
        "mesh/nodes/<id>/pool/fault/corrupt_hint_tags",
        "get,set",
        "byzantine sender: corrupt outbound hint-batch tags",
    ),
    (
        "mesh/nodes/<id>/pool/fault/drop_per_million",
        "get,set",
        "outbound send drop rate, parts per million",
    ),
    (
        "mesh/nodes/<id>/pool/fault/rx_latency_micros",
        "get,set",
        "inbound service delay, microseconds",
    ),
    (
        "mesh/nodes/<id>/pool/fault/tx_latency_micros",
        "get,set",
        "outbound send delay, microseconds",
    ),
    (
        "mesh/nodes/<id>/pool/quarantined/<addr>",
        "get",
        "whether addr is currently quarantined",
    ),
    (
        "mesh/nodes/<id>/pool/stats",
        "get,list",
        "pool counters: List = names, Get = values",
    ),
    (
        "mesh/nodes/<id>/pool/stats/<name>",
        "get",
        "one pool counter",
    ),
    (
        "mesh/nodes/<id>/trace",
        "get,list",
        "retained trace ring, oldest first",
    ),
];

/// Pool counter names served under `pool/stats`, sorted. Two are gauges
/// refreshed at read time (`idle_connections`, `quarantined_peers`); the
/// rest come off [`crate::pool::PoolStats`].
const POOL_STAT_NAMES: &[&str] = &[
    "connects",
    "idle_connections",
    "injected_drops",
    "partition_rejections",
    "quarantine_rejections",
    "quarantined_peers",
    "retries",
    "reuses",
];

fn ok(entries: Vec<MetaEntry>) -> Message {
    Message::MetaReply {
        status: MetaStatus::Ok,
        entries,
    }
}

fn fail(status: MetaStatus) -> Message {
    Message::MetaReply {
        status,
        // bh-lint: allow(no-hot-alloc, reason = "Vec::new() is capacity 0 and never touches the allocator; error replies carry no entries")
        entries: Vec::new(),
    }
}

fn entry(path: String, value: impl Into<String>) -> MetaEntry {
    MetaEntry {
        path,
        value: value.into(),
    }
}

/// Entry point: resolves one request against the namespace. Called
/// inline by `local_response` on shard threads — everything in here is
/// local state except the two detached control writes.
pub(super) fn handle(inner: &Arc<Inner>, op: MetaOp, path: &str, value: &str) -> Message {
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segs.split_first() {
        Some((&"meta", rest)) => handle_meta(op, rest),
        Some((&"mesh", rest)) => handle_mesh(inner, op, rest, value),
        _ => fail(MetaStatus::NotFound),
    }
}

/// `meta/...`: capability discovery. `List meta` dumps the route table;
/// `Get meta/<path>` answers which ops a concrete (or pattern) path
/// supports.
fn handle_meta(op: MetaOp, rest: &[&str]) -> Message {
    match op {
        MetaOp::List if rest.is_empty() => ok(ROUTES
            .iter()
            .map(|(pattern, ops, _)| entry(format!("meta/{pattern}"), *ops))
            .collect()),
        MetaOp::Get if !rest.is_empty() => {
            for (pattern, ops, help) in ROUTES {
                if pattern_matches(pattern, rest) {
                    let mut joined = String::from("meta");
                    for s in rest {
                        joined.push('/');
                        joined.push_str(s);
                    }
                    return ok(vec![entry(joined, format!("{ops} — {help}"))]);
                }
            }
            fail(MetaStatus::NotFound)
        }
        MetaOp::Set => fail(MetaStatus::Denied),
        _ => fail(MetaStatus::Invalid),
    }
}

/// Whether `segs` (a concrete path, or the pattern text itself) matches
/// a route pattern: equal length, each segment either literal-equal or
/// consumed by a `<wildcard>` segment.
fn pattern_matches(pattern: &str, segs: &[&str]) -> bool {
    let pat: Vec<&str> = pattern.split('/').collect();
    pat.len() == segs.len()
        && pat
            .iter()
            .zip(segs)
            .all(|(p, s)| p == s || (p.starts_with('<') && !s.is_empty()))
}

/// `mesh/nodes[/<id>/...]`: the one-node data tree.
fn handle_mesh(inner: &Arc<Inner>, op: MetaOp, rest: &[&str], value: &str) -> Message {
    let Some((&"nodes", rest)) = rest.split_first() else {
        return fail(MetaStatus::NotFound);
    };
    let id = inner.machine.0;
    let Some((node, rest)) = rest.split_first() else {
        // `mesh/nodes`: each node lists exactly itself; the bench
        // fan-out client unions the mesh view.
        return match op {
            MetaOp::List => ok(vec![entry(
                format!("mesh/nodes/{id}"),
                inner.machine.to_addr().to_string(),
            )]),
            _ => fail(MetaStatus::Denied),
        };
    };
    // `self` always aliases the serving node; a numeric id must be ours
    // (nodes do not proxy for each other — the fan-out client addresses
    // each node directly).
    if *node != "self" {
        match node.parse::<u64>() {
            Ok(n) if n == id => {}
            Ok(_) => return fail(MetaStatus::NotFound),
            Err(_) => return fail(MetaStatus::Invalid),
        }
    }
    let root = format!("mesh/nodes/{id}");
    match rest.split_first() {
        None => match op {
            MetaOp::List => ok(["control", "hints", "metrics", "pool", "trace"]
                .iter()
                .map(|b| entry(format!("{root}/{b}"), ""))
                .collect()),
            _ => fail(MetaStatus::Denied),
        },
        Some((&"metrics", rest)) => metrics_node(inner, op, rest, &root),
        Some((&"trace", rest)) => trace_node(inner, op, rest, &root),
        Some((&"hints", rest)) => hints_node(inner, op, rest, &root),
        Some((&"pool", rest)) => pool_node(inner, op, rest, value, &root),
        Some((&"control", rest)) => control_node(inner, op, rest, value, &root),
        _ => fail(MetaStatus::NotFound),
    }
}

/// `.../metrics`: the obs registry. `List` answers the static catalog
/// (names + units — deterministic); `Get` on the branch is the full
/// scrape (the `obs scrape` compatibility surface); `Get` on a leaf is
/// one value.
fn metrics_node(inner: &Arc<Inner>, op: MetaOp, rest: &[&str], root: &str) -> Message {
    match (op, rest) {
        (MetaOp::List, []) => ok(inner
            .metrics
            .catalog()
            .into_iter()
            .map(|info| entry(format!("{root}/metrics/{}", info.name), info.unit.label()))
            .collect()),
        (MetaOp::Get, []) => ok(inner
            .metrics
            .snapshot_with_pool(&inner.pool)
            .into_iter()
            .map(|e| entry(format!("{root}/metrics/{}", e.name), e.value.to_string()))
            .collect()),
        (MetaOp::Get, [name]) => inner
            .metrics
            .snapshot_with_pool(&inner.pool)
            .into_iter()
            .find(|e| e.name == *name)
            .map(|e| {
                ok(vec![entry(
                    format!("{root}/metrics/{}", e.name),
                    e.value.to_string(),
                )])
            })
            .unwrap_or_else(|| fail(MetaStatus::NotFound)),
        (MetaOp::Set, _) => fail(MetaStatus::Denied),
        _ => fail(MetaStatus::NotFound),
    }
}

/// `.../trace`: the retained ring, oldest first, one entry per record
/// keyed by ring position.
fn trace_node(inner: &Arc<Inner>, op: MetaOp, rest: &[&str], root: &str) -> Message {
    match (op, rest) {
        (MetaOp::Get | MetaOp::List, []) => {
            let events = inner.trace.lock().snapshot();
            ok(events
                .into_iter()
                .enumerate()
                .map(|(i, ev)| {
                    entry(
                        format!("{root}/trace/{i}"),
                        format!(
                            "ts={} span={} a={:#018x} b={}",
                            ev.ts_micros,
                            span::name(ev.kind),
                            ev.a,
                            ev.b
                        ),
                    )
                })
                .collect())
        }
        (MetaOp::Set, _) => fail(MetaStatus::Denied),
        _ => fail(MetaStatus::NotFound),
    }
}

/// `.../hints`: the hint store, digests as 16-hex leaves, locations
/// rendered as socket addresses.
fn hints_node(inner: &Arc<Inner>, op: MetaOp, rest: &[&str], root: &str) -> Message {
    match (op, rest) {
        (MetaOp::List, []) => {
            let mut entries = inner.hints.entries();
            entries.sort_unstable();
            ok(entries
                .into_iter()
                .map(|(object, location)| {
                    entry(
                        format!("{root}/hints/{object:016x}"),
                        MachineId(location).to_addr().to_string(),
                    )
                })
                .collect())
        }
        (MetaOp::Get, [digest]) => {
            let Ok(key) = u64::from_str_radix(digest, 16) else {
                return fail(MetaStatus::Invalid);
            };
            // Peek, not lookup: introspection must not promote the entry
            // in its shard's LRU order.
            let location = inner
                .hints
                .lock_shard(inner.hints.shard_index(key))
                .peek(key);
            match location {
                Some(loc) => ok(vec![entry(
                    format!("{root}/hints/{key:016x}"),
                    MachineId(loc).to_addr().to_string(),
                )]),
                None => fail(MetaStatus::NotFound),
            }
        }
        (MetaOp::Set, _) => fail(MetaStatus::Denied),
        _ => fail(MetaStatus::NotFound),
    }
}

/// Renders one pool counter by name (gauges refreshed now).
fn pool_stat(inner: &Inner, name: &str) -> Option<u64> {
    let stats = inner.pool.stats();
    Some(match name {
        "connects" => stats.connects,
        "idle_connections" => inner.pool.total_idle_connections() as u64,
        "injected_drops" => stats.injected_drops,
        "partition_rejections" => stats.partition_rejections,
        "quarantine_rejections" => stats.quarantine_rejections,
        "quarantined_peers" => inner.pool.quarantined_peer_count() as u64,
        "retries" => stats.retries,
        "reuses" => stats.reuses,
        _ => return None,
    })
}

/// `.../pool`: the outbound connection pool — counters, partition block
/// list, quarantine state, and the fault-injection switchboard.
fn pool_node(inner: &Arc<Inner>, op: MetaOp, rest: &[&str], value: &str, root: &str) -> Message {
    let switch = inner.pool.fault_switch();
    match (op, rest) {
        (MetaOp::List, []) => ok(["blocked", "fault", "quarantined", "stats"]
            .iter()
            .map(|b| entry(format!("{root}/pool/{b}"), ""))
            .collect()),
        (MetaOp::List, ["stats"]) => ok(POOL_STAT_NAMES
            .iter()
            .map(|n| entry(format!("{root}/pool/stats/{n}"), ""))
            .collect()),
        (MetaOp::Get, ["stats"]) => ok(POOL_STAT_NAMES
            .iter()
            .map(|n| {
                let v = pool_stat(inner, n).unwrap_or(0);
                entry(format!("{root}/pool/stats/{n}"), v.to_string())
            })
            .collect()),
        (MetaOp::Get, ["stats", name]) => match pool_stat(inner, name) {
            Some(v) => ok(vec![entry(
                format!("{root}/pool/stats/{name}"),
                v.to_string(),
            )]),
            None => fail(MetaStatus::NotFound),
        },
        (MetaOp::Get, ["blocked", addr]) => match addr.parse::<SocketAddr>() {
            Ok(a) => ok(vec![entry(
                format!("{root}/pool/blocked/{addr}"),
                bool_str(inner.pool.is_blocked(a)),
            )]),
            Err(_) => fail(MetaStatus::Invalid),
        },
        (MetaOp::Set, ["blocked", addr]) => {
            let Ok(a) = addr.parse::<SocketAddr>() else {
                return fail(MetaStatus::Invalid);
            };
            match parse_bool(value) {
                Some(true) => inner.pool.block(a),
                Some(false) => {
                    // Unblock also forgives: lifting a partition must let
                    // the very next probe through instead of waiting out
                    // quarantine backoff.
                    inner.pool.unblock(a);
                    inner.pool.forgive(a);
                }
                None => return fail(MetaStatus::Invalid),
            }
            ok(vec![entry(format!("{root}/pool/blocked/{addr}"), value)])
        }
        (MetaOp::Get, ["quarantined", addr]) => match addr.parse::<SocketAddr>() {
            Ok(a) => ok(vec![entry(
                format!("{root}/pool/quarantined/{addr}"),
                bool_str(inner.pool.is_quarantined(a)),
            )]),
            Err(_) => fail(MetaStatus::Invalid),
        },
        (MetaOp::List, ["fault"]) => ok(vec![
            entry(
                format!("{root}/pool/fault/corrupt_hint_tags"),
                bool_str(switch.corrupt_hint_tags()),
            ),
            entry(
                format!("{root}/pool/fault/drop_per_million"),
                switch.drop_per_million().to_string(),
            ),
            entry(
                format!("{root}/pool/fault/rx_latency_micros"),
                switch.rx_latency_micros().to_string(),
            ),
            entry(
                format!("{root}/pool/fault/tx_latency_micros"),
                switch.tx_latency_micros().to_string(),
            ),
        ]),
        (MetaOp::Get, ["fault", knob]) => {
            let rendered = match *knob {
                "corrupt_hint_tags" => bool_str(switch.corrupt_hint_tags()).to_string(),
                "drop_per_million" => switch.drop_per_million().to_string(),
                "rx_latency_micros" => switch.rx_latency_micros().to_string(),
                "tx_latency_micros" => switch.tx_latency_micros().to_string(),
                _ => return fail(MetaStatus::NotFound),
            };
            ok(vec![entry(format!("{root}/pool/fault/{knob}"), rendered)])
        }
        (MetaOp::Set, ["fault", knob]) => {
            match *knob {
                "corrupt_hint_tags" => match parse_bool(value) {
                    Some(on) => switch.set_corrupt_hint_tags(on),
                    None => return fail(MetaStatus::Invalid),
                },
                "drop_per_million" | "rx_latency_micros" | "tx_latency_micros" => {
                    let Ok(n) = value.parse::<u32>() else {
                        return fail(MetaStatus::Invalid);
                    };
                    match *knob {
                        "drop_per_million" => switch.set_drop_per_million(n),
                        "rx_latency_micros" => switch.set_rx_latency_micros(n),
                        _ => switch.set_tx_latency_micros(n),
                    }
                }
                _ => return fail(MetaStatus::NotFound),
            }
            ok(vec![entry(format!("{root}/pool/fault/{knob}"), value)])
        }
        (MetaOp::Set, _) => fail(MetaStatus::Denied),
        _ => fail(MetaStatus::NotFound),
    }
}

/// `.../control`: the writable control plane — drain, flush, resync.
fn control_node(inner: &Arc<Inner>, op: MetaOp, rest: &[&str], value: &str, root: &str) -> Message {
    match (op, rest) {
        (MetaOp::List, []) => ok(["drain", "flush", "resync"]
            .iter()
            .map(|b| entry(format!("{root}/control/{b}"), ""))
            .collect()),
        (MetaOp::Get, ["drain"]) => ok(vec![entry(
            format!("{root}/control/drain"),
            bool_str(inner.drained()),
        )]),
        (MetaOp::Set, ["drain"]) => match parse_bool(value) {
            Some(on) => {
                inner.drained.store(on, Ordering::Relaxed);
                ok(vec![entry(format!("{root}/control/drain"), value)])
            }
            None => fail(MetaStatus::Invalid),
        },
        (MetaOp::Set, ["flush"]) => {
            spawn_control(inner, "cache-meta-flush", |inner| flush_once(&inner));
            ok(vec![entry(format!("{root}/control/flush"), "scheduled")])
        }
        (MetaOp::Set, ["resync"]) => {
            spawn_control(inner, "cache-meta-resync", |inner| {
                resync_now(&inner);
            });
            ok(vec![entry(format!("{root}/control/resync"), "scheduled")])
        }
        (MetaOp::Get, ["resync", "runs"]) => ok(vec![entry(
            format!("{root}/control/resync/runs"),
            // Acquire pairs with the Release in `resync_now`: seeing a
            // run implies seeing its learned total.
            inner.resync_runs.load(Ordering::Acquire).to_string(),
        )]),
        (MetaOp::Get, ["resync", "learned"]) => ok(vec![entry(
            format!("{root}/control/resync/learned"),
            inner.resync_learned.load(Ordering::Relaxed).to_string(),
        )]),
        (MetaOp::Set, _) => fail(MetaStatus::Denied),
        _ => fail(MetaStatus::NotFound),
    }
}

/// Detaches a control action that performs outbound I/O onto its own
/// thread — the resolver runs on shard threads, which must never block
/// on the network. The thread is deliberately not joined: it observes
/// the shutdown flag and the poisoned pool like every other node thread.
fn spawn_control(inner: &Arc<Inner>, name: &str, work: impl FnOnce(Arc<Inner>) + Send + 'static) {
    let inner = Arc::clone(inner);
    let _ = std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || {
            if !inner.shutdown.load(Ordering::SeqCst) {
                work(inner);
            }
        });
}

fn bool_str(b: bool) -> &'static str {
    if b {
        "true"
    } else {
        "false"
    }
}

fn parse_bool(value: &str) -> Option<bool> {
    match value {
        "true" | "1" | "on" => Some(true),
        "false" | "0" | "off" => Some(false),
        _ => None,
    }
}
