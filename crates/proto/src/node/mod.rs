//! The cache-node daemon: a Squid-like proxy with the paper's hint module.
//!
//! Each node serves `Get` requests from clients: local cache first, then a
//! **local** hint lookup naming the nearest peer copy, then a direct
//! peer-to-peer transfer, and finally the origin server (misses never take
//! extra hops — a failed hint costs exactly one wasted probe). Nodes
//! advertise copy arrivals/departures as 20-byte hint updates, batched and
//! flushed to their neighbor set on a randomized period (§3.2's
//! Floyd–Jacobson desynchronization).
//!
//! Two connection engines are available ([`ThreadingMode`]):
//!
//! * **Sharded** (default on Linux): a bounded set of epoll shard threads
//!   owns all client and peer sockets, answering hint-module frames
//!   inline and handing `Get` misses to a bounded worker pool. Outbound
//!   traffic (peer probes, origin fetches, hint flushes) goes through a
//!   warm [`crate::pool::ConnectionPool`], and flushes coalesce into
//!   [`Message::HintBatch`] frames.
//! * **Legacy**: the seed's one-OS-thread-per-connection design with a
//!   fresh TCP connection per outbound request and uncoalesced
//!   [`Message::UpdateBatch`] flushes — kept verbatim as the baseline the
//!   load generator measures against, and as the fallback where epoll is
//!   unavailable.

mod engine;
mod meta;
mod metrics;

pub use metrics::{NodeStats, NODE_TRACE_CAPACITY};

use crate::liveness::{LivenessConfig, LivenessTracker, PeerHealth, Transition};
use crate::pool::{ConnectionPool, PoolConfig, RequestOptions};
use crate::wire::{
    coalesce, hint_batch_tag, read_message, write_message, HintAction, HintUpdate, MachineId,
    Message, ServedBy, Status,
};
use bh_cache::{HintCache, LruCache};
use bh_hintlog::{HintLog, LogRecord};
use bh_obs::{span, MetricEntry, MetricInfo, TraceEvent, TraceRing};
use bh_plaxton::{NodeSpec, PlaxtonTree};
use bh_simcore::ByteSize;
use bytes::Bytes;
use metrics::NodeMetrics;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which connection engine a [`CacheNode`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadingMode {
    /// One OS thread per accepted connection, a fresh TCP connection per
    /// outbound request, plain `UpdateBatch` flushes. The seed design.
    Legacy,
    /// Epoll shard threads plus a bounded worker pool, pooled outbound
    /// connections, coalesced `HintBatch` flushes.
    Sharded,
}

impl ThreadingMode {
    /// The default engine for this target: sharded where epoll exists.
    pub fn default_for_target() -> Self {
        if cfg!(target_os = "linux") {
            ThreadingMode::Sharded
        } else {
            ThreadingMode::Legacy
        }
    }
}

/// Configuration for a [`CacheNode`].
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Address to bind (port 0 for ephemeral).
    pub bind: String,
    /// The origin server to fall back to.
    pub origin: SocketAddr,
    /// Neighbor caches that receive this node's hint-update batches
    /// (flat/mesh propagation).
    pub neighbors: Vec<SocketAddr>,
    /// Metadata parent (§3.1.2): updates that change this node's knowledge
    /// climb to the parent, *filtered* — an Add is forwarded only when it
    /// is the first copy this subtree has heard of, a Remove only when no
    /// alternative location remains.
    pub parent: Option<SocketAddr>,
    /// Metadata children: state-changing updates learned from above (or
    /// from one child) propagate down so every subtree eventually knows its
    /// nearest copy.
    pub children: Vec<SocketAddr>,
    /// Data-cache capacity.
    pub data_capacity: ByteSize,
    /// Hint-store capacity (16-byte records, 4-way sets).
    pub hint_capacity: ByteSize,
    /// Upper bound of the randomized update-flush period. The paper uses
    /// 60 s; tests use milliseconds.
    pub flush_max: Duration,
    /// I/O timeout for peer and origin connections.
    pub io_timeout: Duration,
    /// Connection engine (defaults to sharded on Linux, legacy elsewhere).
    pub mode: ThreadingMode,
    /// Epoll shard threads in sharded mode (min 1).
    pub shards: usize,
    /// Worker threads servicing `Get` requests in sharded mode (min 1).
    pub workers: usize,
    /// Digest-partitioned hint-store shards (min 1). Lookups and batch
    /// applies lock only the owning shard; full iteration (purge,
    /// `Resync`, scrape) walks shards in index order so artifacts stay
    /// deterministic.
    pub hint_shards: usize,
    /// Worker-queue high-water mark for admission control. `None` sizes
    /// it from the worker count (`workers * 64`, at least 256); `Some(0)`
    /// rejects every `Get` that would queue (useful in tests).
    pub admission_high_water: Option<usize>,
    /// Global cap on idle pooled connections across all remotes. `None`
    /// keeps the pool default (256). Wide meshes run many nodes per
    /// process in the harness, so the per-process fd budget is roughly
    /// `nodes × pool_idle_cap × fds-per-connection` — the mesh sweep
    /// shrinks this cap as the node count grows.
    pub pool_idle_cap: Option<usize>,
    /// Interval between liveness heartbeats to each neighbor.
    pub heartbeat_interval: Duration,
    /// Consecutive failed heartbeats before a neighbor becomes suspect.
    pub suspicion_threshold: u32,
    /// How long a neighbor must stay suspect (measured from the first
    /// failure of the streak) before it is confirmed dead and standing
    /// state — stale hints, Plaxton table entries — is repaired.
    pub confirm_death_after: Duration,
    /// Upper bound on how long `shutdown`/drop waits for node threads to
    /// unwind before detaching the stragglers.
    pub shutdown_deadline: Duration,
    /// When set, hint-store mutations are mirrored to a crash-safe
    /// append-only log in this directory ([`bh_hintlog::HintLog`]) and a
    /// warm restart replays it at spawn — recovering the hint table
    /// without a network-wide [`CacheNode::resync`]. `None` (the
    /// default) keeps the hint store purely in-memory.
    pub durability_dir: Option<PathBuf>,
}

impl NodeConfig {
    /// A config with the paper's defaults, ephemeral port, no neighbors.
    pub fn new(bind: impl Into<String>, origin: SocketAddr) -> Self {
        NodeConfig {
            bind: bind.into(),
            origin,
            // bh-lint: allow(no-hot-alloc, reason = "config construction runs once per node, not per request")
            neighbors: Vec::new(),
            parent: None,
            // bh-lint: allow(no-hot-alloc, reason = "config construction runs once per node, not per request")
            children: Vec::new(),
            data_capacity: ByteSize::from_mb(64),
            hint_capacity: ByteSize::from_mb(4),
            flush_max: Duration::from_secs(60),
            io_timeout: Duration::from_secs(5),
            mode: ThreadingMode::default_for_target(),
            shards: 2,
            workers: 8,
            hint_shards: 8,
            admission_high_water: None,
            pool_idle_cap: None,
            heartbeat_interval: Duration::from_secs(1),
            suspicion_threshold: 3,
            confirm_death_after: Duration::from_secs(30),
            shutdown_deadline: Duration::from_secs(5),
            durability_dir: None,
        }
    }

    /// Sets the neighbor list.
    pub fn with_neighbors(mut self, neighbors: Vec<SocketAddr>) -> Self {
        self.neighbors = neighbors;
        self
    }

    /// Sets the metadata parent (hierarchical propagation, §3.1.2).
    pub fn with_parent(mut self, parent: SocketAddr) -> Self {
        self.parent = Some(parent);
        self
    }

    /// Sets the metadata children.
    pub fn with_children(mut self, children: Vec<SocketAddr>) -> Self {
        self.children = children;
        self
    }

    /// Sets the flush period bound.
    pub fn with_flush_max(mut self, d: Duration) -> Self {
        self.flush_max = d;
        self
    }

    /// Sets the data capacity.
    pub fn with_data_capacity(mut self, c: ByteSize) -> Self {
        self.data_capacity = c;
        self
    }

    /// Selects the connection engine.
    pub fn with_mode(mut self, mode: ThreadingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the epoll shard count (sharded mode).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the `Get` worker-pool size (sharded mode).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the hint-store shard count.
    pub fn with_hint_shards(mut self, shards: usize) -> Self {
        self.hint_shards = shards.max(1);
        self
    }

    /// Sets the admission-control high-water mark (`0` rejects every
    /// queued `Get`).
    pub fn with_admission_high_water(mut self, mark: usize) -> Self {
        self.admission_high_water = Some(mark);
        self
    }

    /// Caps idle pooled connections across all remotes (min 1).
    pub fn with_pool_idle_cap(mut self, cap: usize) -> Self {
        self.pool_idle_cap = Some(cap.max(1));
        self
    }

    /// Sets the liveness heartbeat interval.
    pub fn with_heartbeat_interval(mut self, d: Duration) -> Self {
        self.heartbeat_interval = d;
        self
    }

    /// Sets the suspicion threshold (consecutive failed heartbeats).
    pub fn with_suspicion_threshold(mut self, n: u32) -> Self {
        self.suspicion_threshold = n.max(1);
        self
    }

    /// Sets the death-confirmation window.
    pub fn with_confirm_death_after(mut self, d: Duration) -> Self {
        self.confirm_death_after = d;
        self
    }

    /// Sets the shutdown join deadline.
    pub fn with_shutdown_deadline(mut self, d: Duration) -> Self {
        self.shutdown_deadline = d;
        self
    }

    /// Enables the durable hint log in `dir` (created if missing).
    pub fn with_durability_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durability_dir = Some(dir.into());
        self
    }
}

#[derive(Debug)]
struct Store {
    /// Metadata LRU (sizes/versions) driving eviction.
    meta: LruCache,
    /// Object bodies, keyed like `meta`.
    bodies: HashMap<u64, Bytes>,
}

/// The hint store partitioned into digest-indexed shards, each behind its
/// own lock, so worker-thread lookups and batch applies stop contending
/// on the data-store lock (and on each other). A key lives in shard
/// `key % N`; every full-store operation (`purge_location`, `entries`,
/// the `Resync` scrape) walks the shards in index order, which keeps
/// derived artifacts deterministic for a given store state.
#[derive(Debug)]
struct HintShards {
    shards: Vec<Mutex<HintCache>>,
}

impl HintShards {
    /// Splits `total` capacity evenly across `n` shards (min 1).
    /// `HintCache::with_capacity` floors each shard at one way-set, so a
    /// tiny capacity still yields usable shards.
    fn with_capacity(total: ByteSize, n: usize) -> HintShards {
        let n = n.max(1);
        let per = ByteSize::from_bytes(total.as_bytes() / n as u64);
        HintShards {
            shards: (0..n)
                .map(|_| Mutex::new(HintCache::with_capacity(per)))
                .collect(),
        }
    }

    /// Unbounded shards, for equivalence tests against a single-store
    /// witness (no capacity-eviction noise).
    #[cfg(test)]
    fn unbounded(n: usize) -> HintShards {
        HintShards {
            shards: (0..n.max(1))
                .map(|_| Mutex::new(HintCache::unbounded()))
                .collect(),
        }
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_index(&self, key: u64) -> usize {
        (key % self.shards.len() as u64) as usize
    }

    fn lock_shard(&self, index: usize) -> parking_lot::MutexGuard<'_, HintCache> {
        self.shards[index].lock()
    }

    /// Promoting lookup on the owning shard only.
    fn lookup(&self, key: u64) -> Option<u64> {
        self.shards[self.shard_index(key)].lock().lookup(key)
    }

    fn remove(&self, key: u64) {
        self.shards[self.shard_index(key)].lock().remove(key);
    }

    /// Drops every record naming `location`, walking shards in index
    /// order. Returns the total purged.
    fn purge_location(&self, location: u64) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().purge_location(location))
            .sum()
    }

    /// Every `(object, location)` pair, shard 0 first.
    fn entries(&self) -> Vec<(u64, u64)> {
        // bh-lint: allow(no-hot-alloc, reason = "operator scrape / Resync path, size unknown until shards are locked")
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.lock().entries());
        }
        out
    }
}

/// The live Plaxton metadata hierarchy this node repairs on churn: the
/// tree the mesh agreed on plus the index/position bookkeeping needed to
/// remove a confirmed-dead member and re-add a revived one at its
/// original coordinates. Every mesh member builds the tree from the same
/// ordered list ([`mesh_tree_for`]), so the repairs stay deterministic
/// and comparable against an analytic replay of the same churn.
#[derive(Debug)]
struct MeshState {
    tree: PlaxtonTree,
    index: HashMap<SocketAddr, usize>,
    position: HashMap<SocketAddr, (f64, f64)>,
}

#[derive(Debug)]
struct Inner {
    config: NodeConfig,
    machine: MachineId,
    store: Mutex<Store>,
    /// Digest-partitioned hint store, locked per shard (never under the
    /// store lock).
    hints: HintShards,
    /// Coalescing buffer for outbound hint updates, bounded at
    /// [`PENDING_CAP`] with drop-oldest overflow.
    pending: Mutex<VecDeque<HintUpdate>>,
    neighbors: Mutex<Vec<SocketAddr>>,
    /// Runtime metadata parent (initialized from the config; chaos meshes
    /// re-point it when a parent dies — see [`on_peer_died`]).
    parent: Mutex<Option<SocketAddr>>,
    /// Runtime metadata children (initialized from the config).
    children: Mutex<Vec<SocketAddr>>,
    /// Parents to adopt, in preference order, should the current parent be
    /// confirmed dead. Empty means "stay orphaned" (the flat-mesh default).
    fallback_parents: Mutex<Vec<SocketAddr>>,
    /// When set, the heartbeat loop probes these peers instead of the
    /// neighbor set — hierarchical meshes monitor the whole membership
    /// while hint flushes still follow the tree.
    liveness_peers: Mutex<Option<Vec<SocketAddr>>>,
    metrics: NodeMetrics,
    /// Structured request/propagation trace ring; timestamps are micros
    /// since `started` (the ring itself never reads a clock).
    trace: Mutex<TraceRing>,
    started: Instant,
    shutdown: AtomicBool,
    /// Warm outbound connections (sharded mode; heartbeat-only in legacy
    /// mode, whose request path dials fresh connections).
    pool: ConnectionPool,
    /// Peer failure detector fed by the heartbeat loop.
    liveness: Mutex<LivenessTracker>,
    /// Live Plaxton tree repaired on confirmed churn (`None` until
    /// [`CacheNode::set_mesh`]).
    mesh: Mutex<Option<MeshState>>,
    /// Durable hint log (`None` unless [`NodeConfig::durability_dir`] is
    /// set). Locked only by the flush thread; request paths stage
    /// records in `log_pending` instead.
    hintlog: Option<Mutex<HintLog>>,
    /// Hint-store mutations awaiting their fsync-batched append — the
    /// durable mirror of the in-memory insert/remove stream.
    log_pending: Mutex<Vec<LogRecord>>,
    /// Set by bulk hint drops (dead-peer purge, byzantine quarantine):
    /// the next flush rewrites the snapshot from live state instead of
    /// logging every purged key.
    log_compact_due: AtomicBool,
    /// Consecutive hint-batch authentication failures per sender
    /// (keyed by `MachineId.0`); crossing
    /// [`HINT_AUTH_QUARANTINE_AFTER`] quarantines the sender.
    hint_auth: Mutex<HashMap<u64, u32>>,
    /// Drain switch (mesh API `Set .../control/drain`): while set, every
    /// client `Get` is turned away with a `Redirect` so the node can be
    /// taken out of rotation without killing in-flight hint traffic.
    drained: AtomicBool,
    /// Completed namespace-triggered resyncs (`Set .../control/resync`
    /// is asynchronous; callers poll `.../control/resync/runs` to see
    /// the run land).
    resync_runs: AtomicU64,
    /// Total hint records learned across those resyncs.
    resync_learned: AtomicU64,
}

impl Inner {
    /// Whether the drain switch is set (checked on every `Get` fast
    /// path; one relaxed load).
    fn drained(&self) -> bool {
        self.drained.load(Ordering::Relaxed)
    }
}

/// Handle to a running cache node; dropping it shuts the node down.
#[derive(Debug)]
pub struct CacheNode {
    addr: SocketAddr,
    inner: Arc<Inner>,
    threads: Vec<std::thread::JoinHandle<()>>,
    /// Wakers for the shard threads (empty in legacy mode); used to break
    /// them out of `epoll_wait` at shutdown.
    wakers: Vec<bh_netpoll::Waker>,
}

impl CacheNode {
    /// Binds, spawns the accept loop and the update flusher.
    ///
    /// # Errors
    ///
    /// Propagates bind errors; fails for IPv6 binds (machine IDs are the
    /// paper's 8-byte IPv4+port records).
    pub fn spawn(mut config: NodeConfig) -> io::Result<Self> {
        // Epoll only exists on Linux; everywhere else the sharded request
        // silently becomes the portable legacy engine.
        if !cfg!(target_os = "linux") {
            config.mode = ThreadingMode::Legacy;
        }
        let listener = TcpListener::bind(&config.bind)?;
        let addr = listener.local_addr()?;
        let machine = MachineId::from_addr(addr)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "IPv4 bind required"))?;
        let pool = ConnectionPool::new(PoolConfig {
            connect_timeout: config.io_timeout,
            io_timeout: config.io_timeout,
            quarantine: config.io_timeout * 4,
            // Every worker may hold a connection to the same remote at
            // once; a smaller cap would drop and re-dial the excess.
            max_idle_per_peer: config.workers.max(4),
            max_idle_total: config
                .pool_idle_cap
                .unwrap_or(PoolConfig::default().max_idle_total),
            // Per-node jitter stream: distinct nodes must not retry or
            // re-probe in lockstep.
            jitter_seed: machine.0,
            ..PoolConfig::default()
        });
        let metrics = NodeMetrics::register();
        let hints = HintShards::with_capacity(config.hint_capacity, config.hint_shards);
        let mut hintlog = None;
        if let Some(dir) = &config.durability_dir {
            // Warm restart: open the durable log and replay snapshot +
            // tail into the hint store before serving a single request.
            // A failed-open falls back to a cold store rather than
            // failing the spawn — durability is best-effort by design.
            let t0 = Instant::now();
            if let Ok(recovered) = HintLog::open(dir) {
                for r in &recovered.records {
                    let mut shard = hints.lock_shard(hints.shard_index(r.key));
                    if r.is_remove() {
                        shard.remove(r.key);
                    } else {
                        shard.insert(r.key, r.machine());
                    }
                }
                metrics
                    .hint_log_replay_micros
                    .add(t0.elapsed().as_micros() as u64);
                metrics
                    .hints_recovered_from_log
                    .add(hints.entries().len() as u64);
                hintlog = Some(Mutex::new(recovered.log));
            }
        }
        let inner = Arc::new(Inner {
            machine,
            store: Mutex::new(Store {
                meta: LruCache::new(config.data_capacity),
                bodies: HashMap::new(),
            }),
            hints,
            pending: Mutex::new(VecDeque::new()),
            neighbors: Mutex::new(config.neighbors.clone()),
            parent: Mutex::new(config.parent),
            children: Mutex::new(config.children.clone()),
            // bh-lint: allow(no-hot-alloc, reason = "node spawn runs once, not per request")
            fallback_parents: Mutex::new(Vec::new()),
            liveness_peers: Mutex::new(None),
            metrics,
            trace: Mutex::new(TraceRing::new(NODE_TRACE_CAPACITY)),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            pool,
            liveness: Mutex::new(LivenessTracker::new(LivenessConfig {
                suspicion_threshold: config.suspicion_threshold,
                confirm_death_after: config.confirm_death_after,
            })),
            mesh: Mutex::new(None),
            hintlog,
            // bh-lint: allow(no-hot-alloc, reason = "node spawn runs once, not per request")
            log_pending: Mutex::new(Vec::new()),
            log_compact_due: AtomicBool::new(false),
            hint_auth: Mutex::new(HashMap::new()),
            drained: AtomicBool::new(false),
            resync_runs: AtomicU64::new(0),
            resync_learned: AtomicU64::new(0),
            config,
        });

        // bh-lint: allow(no-hot-alloc, reason = "node spawn runs once, not per request")
        let mut threads = Vec::new();
        // bh-lint: allow(no-hot-alloc, reason = "node spawn runs once, not per request")
        let mut wakers = Vec::new();
        match inner.config.mode {
            ThreadingMode::Sharded => {
                let engine = engine::spawn(listener, Arc::clone(&inner))?;
                threads.extend(engine.threads);
                wakers = engine.wakers;
            }
            ThreadingMode::Legacy => {
                let inner = Arc::clone(&inner);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("cache-accept-{addr}"))
                        .spawn(move || accept_loop(listener, inner))?,
                );
            }
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("cache-flush-{addr}"))
                    .spawn(move || flush_loop(inner))?,
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("cache-heartbeat-{addr}"))
                    .spawn(move || heartbeat_loop(inner))?,
            );
        }
        Ok(CacheNode {
            addr,
            inner,
            threads,
            wakers,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This node's 8-byte machine identifier.
    pub fn machine_id(&self) -> MachineId {
        self.inner.machine
    }

    /// Counter snapshot as the typed view ([`NodeStats`]), derived from
    /// the registry — the same flat list [`CacheNode::metrics_snapshot`]
    /// returns and the wire `Stats` frame answers.
    pub fn stats(&self) -> NodeStats {
        NodeStats::from_snapshot(&self.metrics_snapshot())
    }

    /// Every registered metric as a sorted `(name, value)` list,
    /// including the pool gauges (refreshed now) and the latency
    /// histogram buckets.
    pub fn metrics_snapshot(&self) -> Vec<MetricEntry> {
        self.inner.metrics.snapshot_with_pool(&self.inner.pool)
    }

    /// The metric catalog (name, unit, help, determinism class).
    pub fn metrics_catalog(&self) -> Vec<MetricInfo> {
        self.inner.metrics.catalog()
    }

    /// Retained trace records, oldest first.
    pub fn trace_snapshot(&self) -> Vec<TraceEvent> {
        self.inner.trace.lock().snapshot()
    }

    /// Number of objects currently cached.
    pub fn cached_objects(&self) -> usize {
        self.inner.store.lock().meta.len()
    }

    /// The hint module's **find nearest** command: the location of the
    /// nearest known copy of the object with `key`, if any.
    pub fn find_nearest(&self, key: u64) -> Option<MachineId> {
        self.inner.hints.lookup(key).map(MachineId)
    }

    /// The hint module's **invalidate** command: drops the local copy of
    /// `url` and advertises the non-presence.
    pub fn invalidate(&self, url: &str) {
        let key = bh_md5::url_key(url);
        let mut store = self.inner.store.lock();
        if store.meta.remove(key).is_some() {
            store.bodies.remove(&key);
            drop(store);
            queue_update(&self.inner, HintAction::Remove, key);
        }
    }

    /// Replaces the neighbor set at runtime (nodes joining or leaving the
    /// collective — the paper's self-configuring hierarchy reassigns
    /// neighbors the same way).
    pub fn set_neighbors(&self, neighbors: Vec<SocketAddr>) {
        *self.inner.neighbors.lock() = neighbors;
    }

    /// Re-points the metadata parent at runtime (self-configuration:
    /// hierarchies built over ephemeral ports wire parents after spawn,
    /// and re-homing re-points orphans after a parent death).
    pub fn set_parent(&self, parent: Option<SocketAddr>) {
        *self.inner.parent.lock() = parent;
    }

    /// The current metadata parent, if any.
    pub fn parent(&self) -> Option<SocketAddr> {
        *self.inner.parent.lock()
    }

    /// Replaces the metadata children at runtime.
    pub fn set_children(&self, children: Vec<SocketAddr>) {
        *self.inner.children.lock() = children;
    }

    /// The current metadata children.
    pub fn children(&self) -> Vec<SocketAddr> {
        self.inner.children.lock().clone()
    }

    /// Installs the ordered list of parents to adopt if the current one is
    /// confirmed dead. On re-homing, the node picks the first entry that
    /// is not the dead parent, counts it in
    /// [`NodeStats::parent_rehomes`], and re-advertises its cached
    /// objects upward so hint propagation resumes through the new parent.
    pub fn set_fallback_parents(&self, parents: Vec<SocketAddr>) {
        *self.inner.fallback_parents.lock() = parents;
    }

    /// Overrides the set of peers the heartbeat loop monitors (pass
    /// `None` to fall back to the neighbor set). Hierarchical meshes
    /// monitor the full membership so every survivor repairs the shared
    /// Plaxton tree, while hint flushes still follow the tree edges.
    pub fn set_liveness_peers(&self, peers: Option<Vec<SocketAddr>>) {
        *self.inner.liveness_peers.lock() = peers;
    }

    /// Flushes pending hint updates to all neighbors immediately (tests use
    /// this instead of waiting out the randomized timer).
    pub fn flush_updates_now(&self) {
        flush_once(&self.inner);
    }

    /// The outbound connection pool — fault switch, partition block list,
    /// quarantine state. The chaos driver steers faults through this.
    pub fn pool(&self) -> &ConnectionPool {
        &self.inner.pool
    }

    /// The hint store's current contents as `(object, location)` pairs,
    /// sorted by object key.
    pub fn hint_entries(&self) -> Vec<(u64, u64)> {
        let mut entries = self.inner.hints.entries();
        entries.sort_unstable();
        entries
    }

    /// The failure detector's current judgment of `addr`.
    pub fn peer_health(&self, addr: SocketAddr) -> PeerHealth {
        self.inner.liveness.lock().health(addr)
    }

    /// Installs the mesh membership this node repairs on churn: builds the
    /// shared Plaxton metadata tree over `members` (every member must pass
    /// the same ordered list so the trees agree). A confirmed death
    /// removes the member and counts the rewritten routing-table entries
    /// in [`NodeStats::plaxton_repair_entries`]; a revival re-adds it at
    /// its original coordinates.
    pub fn set_mesh(&self, members: &[SocketAddr]) {
        let tree = mesh_tree_for(members);
        let index = members.iter().enumerate().map(|(i, a)| (*a, i)).collect();
        let position = members
            .iter()
            .enumerate()
            .map(|(i, a)| (*a, (i as f64, 0.0)))
            .collect();
        *self.inner.mesh.lock() = Some(MeshState {
            tree,
            index,
            position,
        });
    }

    /// Runs one round of heartbeats against the current neighbor set
    /// immediately (tests use this instead of waiting out the interval).
    pub fn heartbeat_now(&self) {
        heartbeat_round(&self.inner);
    }

    /// Anti-entropy pull: asks every neighbor for the objects it holds and
    /// applies the answers to the hint store. A warm-restarted node calls
    /// this to rebuild the hint table it lost in the crash instead of
    /// waiting for organic update traffic. Returns the number of hint
    /// records received.
    pub fn resync(&self) -> usize {
        resync_now(&self.inner)
    }

    /// Stops the node gracefully and joins its threads (bounded by
    /// [`NodeConfig::shutdown_deadline`]). Staged durable-log records
    /// reach the disk first — only a crash ([`CacheNode::kill`]) loses
    /// them.
    pub fn shutdown(mut self) {
        persist_hint_log(&self.inner);
        self.stop();
    }

    /// Crash-stop: tears the node down immediately, discarding pending
    /// hint updates instead of flushing them — the failure mode the chaos
    /// harness injects. The rest of the mesh sees an unannounced
    /// disappearance and recovers via quarantine, suspicion, and resync.
    pub fn kill(mut self) {
        self.inner.pending.lock().clear();
        // A crash loses everything not yet fsynced: staged log records
        // die with the process, exactly like the pending hint updates.
        self.inner.log_pending.lock().clear();
        self.stop();
    }

    fn stop(&mut self) {
        // Idempotent: the first call drains `threads`, so an explicit
        // `shutdown` followed by the Drop-driven call finds nothing to do.
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Fail outbound I/O fast so workers blocked behind pool requests
        // unwind instead of riding out connect timeouts.
        self.inner.pool.poison();
        for waker in &self.wakers {
            waker.wake();
        }
        let _ = TcpStream::connect(self.addr);
        let deadline = Instant::now() + self.inner.config.shutdown_deadline;
        let mut pending: Vec<std::thread::JoinHandle<()>> = self.threads.drain(..).collect();
        loop {
            let mut still_running = Vec::with_capacity(pending.len());
            for t in pending {
                if t.is_finished() {
                    let _ = t.join();
                } else {
                    still_running.push(t);
                }
            }
            pending = still_running;
            if pending.is_empty() {
                break;
            }
            if Instant::now() >= deadline {
                // Deadline reached: detach the stragglers rather than
                // wedging the caller on a stuck worker. They observe the
                // shutdown flag and the poisoned pool on their own.
                break;
            }
            // Re-nudge the accept loop in case the first connect raced the
            // shutdown flag.
            let _ = TcpStream::connect(self.addr);
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for CacheNode {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Records one span into the node's trace ring. The timestamp is micros
/// since node start, computed here and passed in — the ring itself is
/// clock-free.
fn trace_event(inner: &Inner, kind: u16, a: u64, b: u64) {
    let ts = inner.started.elapsed().as_micros() as u64;
    inner.trace.lock().record(TraceEvent {
        ts_micros: ts,
        kind,
        a,
        b,
    });
}

/// Cap on the pending hint-update coalescing buffer. A slow or dead
/// neighbor cannot grow the queue past this: overflow drops the oldest
/// records — they are hints, so the next flush, push, or anti-entropy
/// resync re-advertises the state — and counts `hint_batch_overflow`.
const PENDING_CAP: usize = 4096;

/// Pushes one update into `pending`, evicting the oldest record when the
/// buffer is at `cap`. Returns how many records were dropped (0 or 1).
fn push_bounded(pending: &mut VecDeque<HintUpdate>, update: HintUpdate, cap: usize) -> u64 {
    let mut dropped = 0;
    while pending.len() >= cap {
        pending.pop_front();
        dropped += 1;
    }
    pending.push_back(update);
    dropped
}

fn queue_pending<I: IntoIterator<Item = HintUpdate>>(inner: &Inner, updates: I) {
    let mut pending = inner.pending.lock();
    let mut dropped = 0;
    for u in updates {
        dropped += push_bounded(&mut pending, u, PENDING_CAP);
    }
    drop(pending);
    if dropped > 0 {
        inner.metrics.hint_batch_overflow.add(dropped);
    }
}

fn queue_update(inner: &Inner, action: HintAction, key: u64) {
    queue_pending(
        inner,
        std::iter::once(HintUpdate {
            action,
            object: key,
            machine: inner.machine,
        }),
    );
}

/// Stores a body locally (inform), returning the hint updates implied by
/// any evictions plus the arrival itself.
fn store_body(inner: &Inner, key: u64, version: u32, body: Bytes) {
    let mut store = inner.store.lock();
    let size = ByteSize::from_bytes(body.len() as u64);
    let evicted = store.meta.insert(key, size, version);
    let mut departed = Vec::with_capacity(evicted.len());
    for e in evicted {
        store.bodies.remove(&e.key);
        departed.push(e.key);
    }
    let stored = store.meta.peek(key).is_some();
    if stored {
        store.bodies.insert(key, body);
    }
    drop(store);
    for gone in departed {
        queue_update(inner, HintAction::Remove, gone);
    }
    if stored {
        queue_update(inner, HintAction::Add, key);
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let inner_conn = Arc::clone(&inner);
        let spawned = std::thread::Builder::new()
            .name("cache-conn".to_string())
            .spawn(move || {
                let _ = serve_connection(stream, inner_conn);
            });
        if spawned.is_err() {
            // Thread exhaustion: drop the connection and account it
            // rather than bringing the whole accept loop down.
            inner.metrics.service_errors.inc();
        }
    }
}

fn flush_loop(inner: Arc<Inner>) {
    // Randomized period: uniform in [0, flush_max), re-drawn every round
    // (Floyd–Jacobson desynchronization). Sleep in short slices so shutdown
    // joins promptly even with long periods.
    let mut seed = inner.machine.0 | 1;
    'outer: while !inner.shutdown.load(Ordering::SeqCst) {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let max_ms = inner.config.flush_max.as_millis().max(1) as u64;
        let mut remaining = seed % max_ms;
        while remaining > 0 {
            let slice = remaining.min(20);
            std::thread::sleep(Duration::from_millis(slice));
            remaining -= slice;
            if inner.shutdown.load(Ordering::SeqCst) {
                break 'outer;
            }
        }
        flush_once(&inner);
    }
}

/// Consecutive hint-batch authentication failures a sender is allowed
/// before it is quarantined (pool-blocked, hints purged like a dead
/// peer's). The first valid batch afterwards heals it.
const HINT_AUTH_QUARANTINE_AFTER: u32 = 3;

/// Log bytes past which the flush thread compacts the durable log into
/// a fresh snapshot even without a bulk-purge trigger.
const LOG_COMPACT_BYTES: u64 = 1 << 20;

/// Stages one hint-store mutation for the durable log (no-op when the
/// node runs without durability). The actual write and fsync happen on
/// the flush thread ([`persist_hint_log`]), never on a request path.
fn log_mutation(inner: &Inner, record: LogRecord) {
    if inner.hintlog.is_some() {
        inner.log_pending.lock().push(record);
    }
}

/// Drains staged log records into one CRC-framed, fsynced append, and
/// compacts the log into a snapshot when a bulk purge flagged it or the
/// tail has grown past [`LOG_COMPACT_BYTES`]. Write errors are dropped:
/// the in-memory store stays authoritative and the §3.2 invariant makes
/// a lost hint cost at most one wasted probe after the next restart.
fn persist_hint_log(inner: &Inner) {
    let Some(hintlog) = &inner.hintlog else {
        return;
    };
    let staged: Vec<LogRecord> = std::mem::take(&mut *inner.log_pending.lock());
    let compact_due = inner.log_compact_due.swap(false, Ordering::Relaxed);
    // bh-lint: allow(lock-order, reason = "group commit: only flush ticks take the hintlog lock, request threads stage into log_pending and never touch it")
    let mut log = hintlog.lock();
    if !staged.is_empty() {
        let _ = log.append(&staged).and_then(|()| log.sync());
    }
    if compact_due || log.log_bytes() > LOG_COMPACT_BYTES {
        let _ = log.compact(&inner.hints.entries());
    }
}

/// Builds this node's authenticated outbound [`Message::HintBatch`].
/// When the chaos harness arms `corrupt_hint_tags` on the fault switch,
/// the tag's first byte is flipped — the frame still parses everywhere,
/// but verification fails at every honest receiver (the byzantine-sender
/// fault).
fn outbound_hint_batch(inner: &Inner, updates: Vec<HintUpdate>) -> Message {
    let mut msg = Message::hint_batch(inner.machine, updates);
    if inner.pool.fault_switch().corrupt_hint_tags() {
        if let Message::HintBatch { tag, .. } = &mut msg {
            tag[0] ^= 0xFF;
        }
    }
    msg
}

/// Checks a received batch's authenticator against the tag this node
/// computes for `(sender, updates)`. A mismatch counts
/// `hint_auth_failures` and advances the sender's failure streak;
/// crossing [`HINT_AUTH_QUARANTINE_AFTER`] quarantines the sender —
/// outbound path blocked, every hint it planted purged (the same repair
/// a confirmed death gets). A valid batch from a quarantined sender
/// heals it: streak cleared, block lifted.
fn verify_hint_batch(
    inner: &Inner,
    sender: MachineId,
    updates: &[HintUpdate],
    tag: &[u8; 16],
) -> bool {
    if hint_batch_tag(sender, updates) == *tag {
        let was_quarantined = inner
            .hint_auth
            .lock()
            .remove(&sender.0)
            .is_some_and(|streak| streak >= HINT_AUTH_QUARANTINE_AFTER);
        if was_quarantined {
            let addr = sender.to_addr();
            inner.pool.unblock(addr);
            inner.pool.forgive(addr);
        }
        return true;
    }
    inner.metrics.hint_auth_failures.inc();
    let streak = {
        let mut auth = inner.hint_auth.lock();
        let streak = auth.entry(sender.0).or_insert(0);
        *streak += 1;
        *streak
    };
    if streak == HINT_AUTH_QUARANTINE_AFTER {
        inner.pool.block(sender.to_addr());
        let purged = inner.hints.purge_location(sender.0);
        inner.metrics.stale_hints_gc.add(purged as u64);
        inner.log_compact_due.store(true, Ordering::Relaxed);
    }
    false
}

fn flush_once(inner: &Inner) {
    persist_hint_log(inner);
    let batch: Vec<HintUpdate> = std::mem::take(&mut *inner.pending.lock()).into();
    if batch.is_empty() {
        return;
    }
    let mut targets: Vec<SocketAddr> = inner.neighbors.lock().clone();
    if let Some(p) = *inner.parent.lock() {
        targets.push(p);
    }
    targets.extend(inner.children.lock().iter().copied());
    match inner.config.mode {
        ThreadingMode::Sharded => {
            // Coalesce first (an Add shadowed by a Remove never hits the
            // wire), then one versioned HintBatch per target over a warm
            // pooled connection. A dead target fails at most one fast
            // probe and is quarantined; the flush never wedges on it.
            let batch = coalesce(batch);
            let targets_n = targets.len() as u64;
            let msg = outbound_hint_batch(inner, batch.clone());
            for neighbor in targets {
                if let Ok(Message::Ack) =
                    inner
                        .pool
                        .request(neighbor, RequestOptions::peer_probe(), &msg)
                {
                    inner.metrics.updates_sent.add(batch.len() as u64);
                }
            }
            trace_event(inner, span::FLUSH_BATCH, batch.len() as u64, targets_n);
        }
        ThreadingMode::Legacy => {
            let targets_n = targets.len() as u64;
            let msg = Message::UpdateBatch(batch.clone());
            for neighbor in targets {
                if let Ok(mut s) = TcpStream::connect_timeout(&neighbor, inner.config.io_timeout) {
                    let _ = s.set_write_timeout(Some(inner.config.io_timeout));
                    let _ = s.set_read_timeout(Some(inner.config.io_timeout));
                    if write_message(&mut s, &msg).is_ok() {
                        let _ = read_message(&mut s); // Ack
                        inner.metrics.updates_sent.add(batch.len() as u64);
                    }
                }
            }
            trace_event(inner, span::FLUSH_BATCH, batch.len() as u64, targets_n);
        }
    }
}

/// Builds the canonical Plaxton metadata tree over an ordered member
/// list: member `i` sits at coordinates `(i, 0)`. Public so integration
/// tests and the chaos driver can replay the same churn against an
/// analytic copy of the tree a live mesh starts from.
pub fn mesh_tree_for(members: &[SocketAddr]) -> PlaxtonTree {
    let specs: Vec<NodeSpec> = members
        .iter()
        .enumerate()
        .map(|(i, a)| NodeSpec::from_address(&a.to_string(), (i as f64, 0.0)))
        .collect();
    // bh-lint: allow(no-panic-hot-path, reason = "setup-time precondition on mesh construction, not a request path")
    PlaxtonTree::build(specs, 1).expect("mesh members form a valid Plaxton tree")
}

/// Ticks [`heartbeat_round`] on the configured interval, sleeping in
/// short slices so shutdown joins promptly.
fn heartbeat_loop(inner: Arc<Inner>) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        let mut remaining = inner.config.heartbeat_interval.as_millis().max(1) as u64;
        while remaining > 0 {
            let slice = remaining.min(20);
            std::thread::sleep(Duration::from_millis(slice));
            remaining -= slice;
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
        }
        heartbeat_round(&inner);
    }
}

/// Pings every current neighbor once and feeds the outcomes into the
/// failure detector, repairing standing state on confirmed transitions.
fn heartbeat_round(inner: &Inner) {
    let peers: Vec<SocketAddr> = inner
        .liveness_peers
        .lock()
        .clone()
        .unwrap_or_else(|| inner.neighbors.lock().clone());
    for addr in peers {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // One attempt, feeds the quarantine, but never blocked by it: the
        // detector must keep probing a quarantined peer to notice both
        // durable death and revival.
        let opts = RequestOptions {
            max_attempts: 1,
            quarantine_on_failure: true,
            respect_quarantine: false,
        };
        match inner.pool.request(addr, opts, &Message::Ping) {
            Ok(Message::Ack) => {
                inner.metrics.heartbeats_ok.inc();
                inner.pool.forgive(addr);
                if inner.liveness.lock().record_ok(addr) == Transition::Revived {
                    on_peer_revived(inner, addr);
                }
            }
            Ok(_) | Err(_) => {
                inner.metrics.heartbeats_failed.inc();
                let transition = inner.liveness.lock().record_failure(addr, Instant::now());
                if transition == Transition::Died {
                    on_peer_died(inner, addr);
                }
            }
        }
    }
}

/// Confirmed death: GC every hint naming the dead peer — restoring the
/// §3.2 invariant that a dead peer costs at most one wasted probe per
/// object, and zero once the detector has confirmed it — then repair the
/// live Plaxton tree.
fn on_peer_died(inner: &Inner, addr: SocketAddr) {
    inner.metrics.peers_confirmed_dead.inc();
    if let Some(machine) = MachineId::from_addr(addr) {
        let purged = inner.hints.purge_location(machine.0);
        inner.metrics.stale_hints_gc.add(purged as u64);
        if purged > 0 {
            // Bulk drop: the next flush rewrites the durable snapshot
            // from live state instead of logging each purged key.
            inner.log_compact_due.store(true, Ordering::Relaxed);
        }
    }
    if let Some(mesh) = inner.mesh.lock().as_mut() {
        if let Some(&idx) = mesh.index.get(&addr) {
            if let Ok(changed) = mesh.tree.remove_node(idx) {
                inner.metrics.plaxton_repair_entries.add(changed as u64);
            }
        }
    }
    rehome_if_orphaned(inner, addr);
}

/// Re-homing (the paper's self-configuring hierarchy): when the
/// confirmed-dead peer is this node's metadata parent, adopt the first
/// fallback parent that is not the dead one, then re-advertise every
/// locally cached object so hint propagation resumes upward through the
/// new parent — the subtree under the adopter may never have heard of
/// these copies.
fn rehome_if_orphaned(inner: &Inner, dead: SocketAddr) {
    {
        let mut parent = inner.parent.lock();
        if *parent != Some(dead) {
            return;
        }
        let next = inner
            .fallback_parents
            .lock()
            .iter()
            .copied()
            .find(|p| *p != dead);
        *parent = next;
        if next.is_none() {
            return;
        }
    }
    inner.metrics.parent_rehomes.inc();
    // Sorted so the re-advertisement batch is deterministic for a given
    // store state (mirrors the Resync reply).
    let mut keys: Vec<u64> = inner.store.lock().bodies.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        queue_update(inner, HintAction::Add, key);
    }
}

/// Revival after a confirmed death: wire the member back into the tree at
/// its original coordinates. Its hint records rebuild through the peer's
/// own resync plus the normal update flow, not here.
fn on_peer_revived(inner: &Inner, addr: SocketAddr) {
    if let Some(mesh) = inner.mesh.lock().as_mut() {
        let (Some(&idx), Some(&pos)) = (mesh.index.get(&addr), mesh.position.get(&addr)) else {
            return;
        };
        if mesh.tree.is_alive(idx) {
            return;
        }
        let spec = NodeSpec::from_address(&addr.to_string(), pos);
        if let Ok((new_idx, changed)) = mesh.tree.add_node(spec) {
            mesh.index.insert(addr, new_idx);
            inner.metrics.plaxton_repair_entries.add(changed as u64);
        }
    }
}

/// Anti-entropy pull ([`CacheNode::resync`] and the mesh API's
/// `Set .../control/resync`): asks every flush target for the objects it
/// holds and applies the authenticated answers to the hint store.
/// Returns the number of hint records learned and advances the
/// namespace-visible `resync_runs`/`resync_learned` counters.
fn resync_now(inner: &Inner) -> usize {
    // Pull from the same peers a flush would reach: neighbors plus
    // the tree edges, so a restarted leaf recovers through its
    // parent even with an empty neighbor set.
    let mut peers: Vec<SocketAddr> = inner.neighbors.lock().clone();
    if let Some(p) = *inner.parent.lock() {
        peers.push(p);
    }
    peers.extend(inner.children.lock().iter().copied());
    let mut learned = 0;
    for addr in peers {
        // Two attempts, no quarantine interaction either way: resync
        // runs right after restart, when this node has no basis for
        // judging its peers yet.
        let opts = RequestOptions {
            max_attempts: 2,
            quarantine_on_failure: false,
            respect_quarantine: false,
        };
        if let Ok(Message::HintBatch {
            sender,
            updates,
            tag,
        }) = exchange(inner, addr, opts, &Message::Resync)
        {
            // Resync replies are authenticated like any other batch:
            // a byzantine peer cannot seed a restarting node's hint
            // table with forged locations.
            if verify_hint_batch(inner, sender, &updates, &tag) {
                learned += updates.len();
                apply_updates(inner, updates);
            }
        }
    }
    inner
        .resync_learned
        .fetch_add(learned as u64, Ordering::Relaxed);
    // Release pairs with the Acquire read in the meta namespace: a poller
    // that observes the run count also observes its learned total.
    inner.resync_runs.fetch_add(1, Ordering::Release);
    learned
}

/// One raw framed request/reply. The legacy engine opens a fresh
/// connection per call (the seed behavior); the sharded engine goes
/// through the pool with the caller's retry/quarantine policy.
fn exchange(
    inner: &Inner,
    addr: SocketAddr,
    opts: RequestOptions,
    msg: &Message,
) -> io::Result<Message> {
    match inner.config.mode {
        ThreadingMode::Sharded => inner.pool.request(addr, opts, msg),
        ThreadingMode::Legacy => {
            let mut s = TcpStream::connect_timeout(&addr, inner.config.io_timeout)?;
            s.set_nodelay(true)?;
            s.set_read_timeout(Some(inner.config.io_timeout))?;
            s.set_write_timeout(Some(inner.config.io_timeout))?;
            write_message(&mut s, msg)?;
            read_message(&mut s)
        }
    }
}

/// One outbound `Get`-shaped request/reply via [`exchange`].
fn fetch_from(
    inner: &Inner,
    addr: SocketAddr,
    opts: RequestOptions,
    msg: &Message,
) -> io::Result<(Status, u32, Bytes)> {
    match exchange(inner, addr, opts, msg)? {
        Message::GetReply {
            status,
            version,
            body,
            ..
        } => Ok((status, version, body)),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected reply {other:?}"),
        )),
    }
}

/// Step 1 of a `Get`: the local data cache. Purely in-memory (a mutex and
/// two map lookups), so the sharded engine answers hits inline on the
/// shard thread instead of paying the worker-pool round trip.
fn local_hit(inner: &Inner, url: &str) -> Option<Message> {
    let key = bh_md5::url_key(url);
    let mut store = inner.store.lock();
    if store.meta.get(key, 0).is_some() {
        if let Some(body) = store.bodies.get(&key).cloned() {
            let version = store.meta.peek(key).map(|(_, v)| v).unwrap_or(0);
            inner.metrics.local_hits.inc();
            drop(store);
            trace_event(inner, span::LOCAL_HIT, key, 0);
            return Some(Message::GetReply {
                status: Status::Ok,
                version,
                served_by: ServedBy::Local,
                body,
            });
        }
    }
    None
}

/// Stable served-by code for trace records: 0 local, 1 peer, 2 origin.
fn served_by_code(reply: &Message) -> u64 {
    match reply {
        Message::GetReply { served_by, .. } => match served_by {
            ServedBy::Local => 0,
            ServedBy::Peer(_) => 1,
            ServedBy::Origin => 2,
        },
        _ => 2,
    }
}

/// The full miss-service path, wrapped in the request-service span
/// (recv → hint-lookup → probe/origin-fetch → reply) and timed into the
/// `request_service_micros` histogram.
fn handle_get(inner: &Inner, url: &str) -> Message {
    if inner.drained() {
        // Drained (mesh API): turn the client away exactly like admission
        // control does, so existing clients already know to fall back to
        // the origin. Hint traffic keeps flowing; only `Get`s drain.
        inner.metrics.admission_rejects.inc();
        trace_event(inner, span::ADMISSION_REJECT, bh_md5::url_key(url), 0);
        return Message::GetReply {
            status: Status::Redirect,
            version: 0,
            served_by: ServedBy::Origin,
            body: Bytes::new(),
        };
    }
    let t0 = Instant::now();
    let key = bh_md5::url_key(url);
    trace_event(inner, span::RECV, key, 0);
    let reply = service_get(inner, url, key);
    trace_event(inner, span::REPLY, key, served_by_code(&reply));
    inner
        .metrics
        .request_service_micros
        .observe(t0.elapsed().as_micros() as u64);
    reply
}

fn service_get(inner: &Inner, url: &str, key: u64) -> Message {
    // 1. Local cache.
    if let Some(reply) = local_hit(inner, url) {
        return reply;
    }

    // 2. Local hint store → direct peer fetch. Only the owning hint
    // shard is locked; the data-store lock is never touched here.
    let hint = inner.hints.lookup(key).map(MachineId);
    trace_event(inner, span::HINT_LOOKUP, key, u64::from(hint.is_some()));
    if let Some(peer) = hint {
        if peer != inner.machine {
            match fetch_from(
                inner,
                peer.to_addr(),
                RequestOptions::peer_probe(),
                &Message::PeerGet {
                    url: url.to_string(),
                },
            ) {
                Ok((Status::Ok, version, body)) => {
                    inner.metrics.peer_hits.inc();
                    trace_event(inner, span::PEER_PROBE, key, 0);
                    store_body(inner, key, version, body.clone());
                    return Message::GetReply {
                        status: Status::Ok,
                        version,
                        served_by: ServedBy::Peer(peer),
                        body,
                    };
                }
                Ok((Status::NotFound, ..))
                | Ok((Status::Error, ..))
                | Ok((Status::Redirect, ..)) => {
                    // False positive: drop the hint, go to the origin. No
                    // second hint lookup (§3.1.1).
                    inner.metrics.false_positives.inc();
                    trace_event(inner, span::PEER_PROBE, key, 1);
                    inner.hints.remove(key);
                    log_mutation(inner, LogRecord::remove(key));
                }
                Err(_) => {
                    // Dead or unreachable peer: same one-wasted-probe
                    // accounting, plus the degradation counter the chaos
                    // harness watches — the request still completes via
                    // the origin.
                    inner.metrics.false_positives.inc();
                    inner.metrics.degraded_to_origin.inc();
                    trace_event(inner, span::PEER_PROBE, key, 2);
                    inner.hints.remove(key);
                    log_mutation(inner, LogRecord::remove(key));
                }
            }
        }
    }

    // 3. Origin server.
    match fetch_from(
        inner,
        inner.config.origin,
        RequestOptions::origin(),
        &Message::Get {
            url: url.to_string(),
        },
    ) {
        Ok((Status::Ok, version, body)) => {
            inner.metrics.origin_fetches.inc();
            trace_event(inner, span::ORIGIN_FETCH, key, 0);
            store_body(inner, key, version, body.clone());
            Message::GetReply {
                status: Status::Ok,
                version,
                served_by: ServedBy::Origin,
                body,
            }
        }
        _ => {
            trace_event(inner, span::ORIGIN_FETCH, key, 1);
            Message::GetReply {
                status: Status::Error,
                version: 0,
                served_by: ServedBy::Origin,
                body: Bytes::new(),
            }
        }
    }
}

/// Applies a received update batch to the hint store with the §3.1.2
/// filtering, queueing the state-changing subset for hierarchical
/// re-propagation. Shared by both connection engines and both batch frames
/// (`UpdateBatch` and `HintBatch`).
fn apply_updates(inner: &Inner, updates: Vec<HintUpdate>) {
    let hierarchical = inner.parent.lock().is_some() || !inner.children.lock().is_empty();
    // Each hint shard is locked once per batch: pass `s` sweeps the
    // updates owned by shard `s`, recording per-update outcomes in
    // `keep`, and the propagate subset is reassembled in original batch
    // order afterwards — so the §3.1.2 filtering result (and every
    // artifact derived from re-propagation) is identical to what a
    // single-store walk would produce.
    let mut keep = vec![false; updates.len()];
    for s in 0..inner.hints.shard_count() {
        let mut shard = None;
        for (i, u) in updates.iter().enumerate() {
            if u.machine == inner.machine || inner.hints.shard_index(u.object) != s {
                continue;
            }
            let hints = shard.get_or_insert_with(|| inner.hints.lock_shard(s));
            match u.action {
                HintAction::Add => {
                    // §3.1.2 filtering: forward only the first
                    // copy this subtree learns of.
                    let first = hints.peek(u.object).is_none();
                    hints.insert(u.object, u.machine.0);
                    log_mutation(inner, LogRecord::add(u.object, u.machine.0));
                    if first {
                        keep[i] = true;
                    } else {
                        inner.metrics.updates_filtered.inc();
                    }
                }
                HintAction::Remove => {
                    // Only drop (and advertise) if the hint
                    // named the departing machine.
                    if hints.peek(u.object) == Some(u.machine.0) {
                        hints.remove(u.object);
                        log_mutation(inner, LogRecord::remove(u.object));
                        keep[i] = true;
                    } else {
                        inner.metrics.updates_filtered.inc();
                    }
                }
            }
        }
    }
    inner.metrics.updates_received.add(updates.len() as u64);
    if hierarchical && keep.iter().any(|&k| k) {
        // Knowledge changed: climb/descend the metadata tree.
        // Loop-safe because re-applying the same update is a
        // no-op (filtered) everywhere it has already landed.
        let propagate = updates
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(u, _)| *u);
        queue_pending(inner, propagate);
    }
}

/// Answers every frame that can be served from purely local state — the
/// hint-module commands, pushes, and the meta namespace. `Get` is *not*
/// local (it may probe a peer or the origin) and is answered with an
/// error here; both engines route it to [`handle_get`] before calling
/// this. Takes the `Arc` (not `&Inner`) because meta control writes that
/// imply outbound I/O (`control/resync`, `control/flush`) must detach
/// onto their own thread — shard threads never perform outbound I/O.
fn local_response(inner: &Arc<Inner>, msg: Message) -> Message {
    match msg {
        Message::MetaRequest { op, path, value } => meta::handle(inner, op, &path, &value),
        Message::PeerGet { url } => {
            // Serve only from the local cache; never forward.
            let key = bh_md5::url_key(&url);
            let mut store = inner.store.lock();
            if store.meta.get(key, 0).is_some() {
                let version = store.meta.peek(key).map(|(_, v)| v).unwrap_or(0);
                match store.bodies.get(&key).cloned() {
                    Some(body) => Message::GetReply {
                        status: Status::Ok,
                        version,
                        served_by: ServedBy::Local,
                        body,
                    },
                    None => Message::GetReply {
                        status: Status::NotFound,
                        version: 0,
                        served_by: ServedBy::Local,
                        body: Bytes::new(),
                    },
                }
            } else {
                Message::GetReply {
                    status: Status::NotFound,
                    version: 0,
                    served_by: ServedBy::Local,
                    body: Bytes::new(),
                }
            }
        }
        Message::UpdateBatch(updates) => {
            apply_updates(inner, updates);
            Message::Ack
        }
        Message::HintBatch {
            sender,
            updates,
            tag,
        } => {
            // Authenticated batch: a bad tag is dropped (and counted
            // toward the sender's quarantine streak) but still Acked —
            // hints are advisory, so a byzantine sender learns nothing
            // from the reply and an honest one never sees an error.
            if verify_hint_batch(inner, sender, &updates, &tag) {
                apply_updates(inner, updates);
            }
            Message::Ack
        }
        Message::Push { url, version, body } => {
            let key = bh_md5::url_key(&url);
            inner.metrics.pushes_received.inc();
            store_body(inner, key, version, body);
            // Aging (§4.1.2): pushed copies start at the cold end.
            inner.store.lock().meta.demote(key);
            Message::Ack
        }
        Message::FindNearest { key } => {
            let location = inner.hints.lookup(key).map(MachineId);
            Message::FindNearestReply { location }
        }
        Message::Ping => Message::Ack,
        Message::Resync => {
            // Anti-entropy pull from a restarting peer: re-advertise every
            // object this node currently holds, as plain Adds. Sorted so
            // the reply is deterministic for a given store state.
            let mut keys: Vec<u64> = {
                let store = inner.store.lock();
                store.bodies.keys().copied().collect()
            };
            keys.sort_unstable();
            let updates = keys
                .into_iter()
                .map(|object| HintUpdate {
                    action: HintAction::Add,
                    object,
                    machine: inner.machine,
                })
                .collect();
            inner.metrics.resyncs_served.inc();
            outbound_hint_batch(inner, updates)
        }
        // Legacy operator scrape frames, kept for wire compatibility.
        // Each is a fixed spelling of one namespace read over the same
        // data: `StatsRequest` ≡ `Get mesh/nodes/self/metrics`,
        // `TraceRequest` ≡ `List mesh/nodes/self/trace` (numeric rather
        // than rendered). New clients use `MetaRequest`.
        Message::StatsRequest => Message::StatsReply(inner.metrics.snapshot_with_pool(&inner.pool)),
        Message::TraceRequest => Message::TraceReply(inner.trace.lock().snapshot()),
        _ => Message::GetReply {
            status: Status::Error,
            version: 0,
            served_by: ServedBy::Local,
            body: Bytes::new(),
        },
    }
}

fn serve_connection(mut stream: TcpStream, inner: Arc<Inner>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    loop {
        let msg = match read_message(&mut stream) {
            Ok(m) => m,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        let reply = match msg {
            Message::Get { url } => handle_get(&inner, &url),
            other => local_response(&inner, other),
        };
        write_message(&mut stream, &reply)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::OriginServer;

    fn cluster(n: usize) -> (OriginServer, Vec<CacheNode>) {
        let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
        let nodes: Vec<CacheNode> = (0..n)
            .map(|_| {
                CacheNode::spawn(
                    NodeConfig::new("127.0.0.1:0", origin.addr())
                        .with_flush_max(Duration::from_secs(3600)),
                )
                .expect("node")
            })
            .collect();
        // Wire the full mesh now that every address is known.
        let addrs: Vec<SocketAddr> = nodes.iter().map(|n| n.addr()).collect();
        for (i, node) in nodes.iter().enumerate() {
            node.set_neighbors(
                addrs
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, a)| *a)
                    .collect(),
            );
        }
        (origin, nodes)
    }

    #[test]
    fn local_cache_serves_second_request() {
        let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
        let node = CacheNode::spawn(NodeConfig::new("127.0.0.1:0", origin.addr())).expect("node");
        let (s1, b1) = crate::client::fetch(node.addr(), "http://t.test/x").expect("fetch");
        let (s2, b2) = crate::client::fetch(node.addr(), "http://t.test/x").expect("fetch");
        assert_eq!(s1, crate::client::Source::Origin);
        assert_eq!(s2, crate::client::Source::Local);
        assert_eq!(b1, b2);
        assert_eq!(node.stats().local_hits, 1);
        assert_eq!(node.stats().origin_fetches, 1);
        assert_eq!(origin.request_count(), 1);
    }

    #[test]
    fn find_nearest_reflects_updates() {
        let (_origin, nodes) = cluster(2);
        let url = "http://t.test/shared";
        let key = bh_md5::url_key(url);
        crate::client::fetch(nodes[0].addr(), url).expect("fetch");
        nodes[0].flush_updates_now();
        // Node 1's hint store should now name node 0.
        let loc = nodes[1].find_nearest(key).expect("hint should arrive");
        assert_eq!(loc, nodes[0].machine_id());
    }

    #[test]
    fn invalidate_advertises_non_presence() {
        let (_origin, nodes) = cluster(2);
        let url = "http://t.test/gone";
        let key = bh_md5::url_key(url);
        crate::client::fetch(nodes[0].addr(), url).expect("fetch");
        nodes[0].flush_updates_now();
        assert!(nodes[1].find_nearest(key).is_some());
        nodes[0].invalidate(url);
        nodes[0].flush_updates_now();
        assert_eq!(nodes[1].find_nearest(key), None);
        assert_eq!(nodes[0].cached_objects(), 0);
    }

    /// Satellite: the digest-partitioned hint store must be
    /// operation-for-operation equivalent to a single-store witness —
    /// lookup results, purge counts, and the full entry set — across
    /// seeds and shard counts.
    #[test]
    fn hint_shards_match_single_store_witness() {
        for seed in [7u64, 42, 1999] {
            for shard_count in [1usize, 2, 4, 8] {
                let shards = HintShards::unbounded(shard_count);
                let mut witness = HintCache::unbounded();
                let mut rng = seed | 1;
                let mut step = move || {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    rng
                };
                for _ in 0..2000 {
                    let op = step() % 100;
                    let key = step() % 257 + 1; // small space forces collisions
                    let loc = step() % 5 + 1;
                    if op < 50 {
                        shards.shards[shards.shard_index(key)]
                            .lock()
                            .insert(key, loc);
                        witness.insert(key, loc);
                    } else if op < 70 {
                        assert_eq!(
                            shards.lookup(key),
                            witness.lookup(key),
                            "lookup diverged at seed {seed}, {shard_count} shards"
                        );
                    } else if op < 85 {
                        shards.remove(key);
                        witness.remove(key);
                    } else {
                        let purged = shards.purge_location(loc);
                        assert_eq!(
                            purged,
                            witness.purge_location(loc),
                            "purge diverged at seed {seed}, {shard_count} shards"
                        );
                    }
                }
                let mut got = shards.entries();
                let mut want = witness.entries();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "entry sets diverged at seed {seed}");
            }
        }
    }

    /// Satellite: the pending coalescing buffer is bounded — overflow
    /// drops the oldest records and reports how many.
    #[test]
    fn pending_buffer_drops_oldest_at_cap() {
        let mut pending: VecDeque<HintUpdate> = VecDeque::new();
        let update = |object: u64| HintUpdate {
            action: HintAction::Add,
            object,
            machine: MachineId(9),
        };
        let mut dropped = 0;
        for i in 0..PENDING_CAP as u64 + 10 {
            dropped += push_bounded(&mut pending, update(i), PENDING_CAP);
        }
        assert_eq!(pending.len(), PENDING_CAP);
        assert_eq!(dropped, 10);
        // Oldest went first: the front is now record 10.
        assert_eq!(pending.front().map(|u| u.object), Some(10));
        assert_eq!(
            pending.back().map(|u| u.object),
            Some(PENDING_CAP as u64 + 9)
        );
    }
}
