//! The node's observability surface: every counter and gauge a
//! [`super::CacheNode`] exposes is declared here, exactly once, through
//! the `bh-obs` registry.
//!
//! [`NodeStats`] survives as a thin typed view derived from a registry
//! snapshot ([`NodeStats::from_snapshot`]) so existing tests and the
//! chaos analysis keep their field access, but there is no hand-rolled
//! snapshot plumbing left: dumps iterate the registry.

use crate::pool::ConnectionPool;
use bh_obs::{Counter, Determinism, Gauge, Histogram, MetricEntry, MetricInfo, Registry, Unit};

/// How many trace records each node retains (newest win once full).
pub const NODE_TRACE_CAPACITY: usize = 4096;

/// Inclusive upper bounds (µs) for the miss-service latency histogram.
const SERVICE_LATENCY_BOUNDS_US: [u64; 10] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
];

/// Counters exposed by a node — a typed view over the metrics registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Requests served from the local cache.
    pub local_hits: u64,
    /// Requests served by a direct peer transfer.
    pub peer_hits: u64,
    /// Requests served by the origin.
    pub origin_fetches: u64,
    /// Peer probes that came back `NotFound` (false-positive hints).
    pub false_positives: u64,
    /// Hint updates sent (records, not batches).
    pub updates_sent: u64,
    /// Hint updates received and applied.
    pub updates_received: u64,
    /// Objects pushed to this node by peers.
    pub pushes_received: u64,
    /// Received updates that were *not* forwarded up/down because they did
    /// not change this node's knowledge (the §3.1.2 filtering).
    pub updates_filtered: u64,
    /// Heartbeats a neighbor answered.
    pub heartbeats_ok: u64,
    /// Heartbeats a neighbor failed to answer.
    pub heartbeats_failed: u64,
    /// Neighbors confirmed dead by the failure detector.
    pub peers_confirmed_dead: u64,
    /// Stale hint records purged when a peer was confirmed dead.
    pub stale_hints_gc: u64,
    /// Plaxton routing-table entries rewritten by churn repair.
    pub plaxton_repair_entries: u64,
    /// Peer probes that failed at the transport layer (dead peer or
    /// partition) and fell back to the origin.
    pub degraded_to_origin: u64,
    /// Times this node adopted a fallback parent after its metadata
    /// parent was confirmed dead (hierarchy re-homing).
    pub parent_rehomes: u64,
    /// Anti-entropy resync requests answered for restarting peers.
    pub resyncs_served: u64,
    /// Requests whose service path failed without a panic: a reply that
    /// could not be delivered, a job the worker pool could not accept,
    /// or a legacy connection thread that could not be spawned.
    pub service_errors: u64,
    /// `Get` requests turned away with a redirect-to-origin reply because
    /// the worker queue was past its high-water mark.
    pub admission_rejects: u64,
    /// Saturation episodes: times the worker queue *crossed* the
    /// high-water mark (one per episode, not per rejected request).
    pub queue_saturation_events: u64,
    /// Hint updates dropped (oldest first) because the coalescing buffer
    /// hit its cap while a neighbor was slow.
    pub hint_batch_overflow: u64,
    /// Cross-thread wake-ups absorbed by an already-pending wake (epoll
    /// round-trips saved by the waker's coalescing flag).
    pub wakeups_coalesced: u64,
    /// Vectored flushes that drained more than one reply frame in a
    /// single `writev` syscall.
    pub writev_batches: u64,
    /// Microseconds spent replaying the durable hint log at spawn
    /// (0 when the node runs without durability).
    pub hint_log_replay_micros: u64,
    /// Hint records live in the store after the spawn-time log replay —
    /// the warm-restart recovery a network resync would otherwise pay
    /// for.
    pub hints_recovered_from_log: u64,
    /// Received hint batches whose authenticator failed verification
    /// (byzantine or corrupted sender).
    pub hint_auth_failures: u64,
}

impl NodeStats {
    /// Rebuilds the typed view from a registry snapshot (the flat
    /// `(name, value)` list a node dumps or answers over the wire).
    /// Entries that are not `NodeStats` counters — pool gauges, latency
    /// histogram buckets — are ignored.
    pub fn from_snapshot(entries: &[MetricEntry]) -> NodeStats {
        let mut out = NodeStats::default();
        for e in entries {
            let slot = match e.name.as_str() {
                "local_hits" => &mut out.local_hits,
                "peer_hits" => &mut out.peer_hits,
                "origin_fetches" => &mut out.origin_fetches,
                "false_positives" => &mut out.false_positives,
                "updates_sent" => &mut out.updates_sent,
                "updates_received" => &mut out.updates_received,
                "pushes_received" => &mut out.pushes_received,
                "updates_filtered" => &mut out.updates_filtered,
                "heartbeats_ok" => &mut out.heartbeats_ok,
                "heartbeats_failed" => &mut out.heartbeats_failed,
                "peers_confirmed_dead" => &mut out.peers_confirmed_dead,
                "stale_hints_gc" => &mut out.stale_hints_gc,
                "plaxton_repair_entries" => &mut out.plaxton_repair_entries,
                "degraded_to_origin" => &mut out.degraded_to_origin,
                "parent_rehomes" => &mut out.parent_rehomes,
                "resyncs_served" => &mut out.resyncs_served,
                "service_errors" => &mut out.service_errors,
                "admission_rejects" => &mut out.admission_rejects,
                "queue_saturation_events" => &mut out.queue_saturation_events,
                "hint_batch_overflow" => &mut out.hint_batch_overflow,
                "wakeups_coalesced" => &mut out.wakeups_coalesced,
                "writev_batches" => &mut out.writev_batches,
                "hint_log_replay_micros" => &mut out.hint_log_replay_micros,
                "hints_recovered_from_log" => &mut out.hints_recovered_from_log,
                "hint_auth_failures" => &mut out.hint_auth_failures,
                _ => continue,
            };
            *slot = e.value;
        }
        out
    }
}

/// The node's registered metric handles. Hot-path updates are relaxed
/// atomic adds on cloned handles; the registry is only locked when a
/// snapshot or scrape asks for it.
#[derive(Debug)]
pub(crate) struct NodeMetrics {
    registry: Registry,
    pub local_hits: Counter,
    pub peer_hits: Counter,
    pub origin_fetches: Counter,
    pub false_positives: Counter,
    pub updates_sent: Counter,
    pub updates_received: Counter,
    pub pushes_received: Counter,
    pub updates_filtered: Counter,
    pub heartbeats_ok: Counter,
    pub heartbeats_failed: Counter,
    pub peers_confirmed_dead: Counter,
    pub stale_hints_gc: Counter,
    pub plaxton_repair_entries: Counter,
    pub degraded_to_origin: Counter,
    pub parent_rehomes: Counter,
    pub resyncs_served: Counter,
    pub service_errors: Counter,
    pub admission_rejects: Counter,
    pub queue_saturation_events: Counter,
    pub hint_batch_overflow: Counter,
    pub wakeups_coalesced: Counter,
    pub writev_batches: Counter,
    pub hint_log_replay_micros: Counter,
    pub hints_recovered_from_log: Counter,
    pub hint_auth_failures: Counter,
    /// Peers currently under quarantine (refreshed at snapshot time).
    pool_quarantined_peers: Gauge,
    /// Warm pooled connections currently idle (refreshed at snapshot time).
    pool_live_connections: Gauge,
    /// Outbound request retries the pool has performed.
    pool_reconnect_attempts: Gauge,
    /// Miss-service latency (the `handle_get` path: hint lookup, peer
    /// probe and/or origin fetch, store).
    pub request_service_micros: Histogram,
}

impl NodeMetrics {
    /// Declares every node metric on a fresh registry. Names of the
    /// `NodeStats` counters are exactly the struct field names, which is
    /// what keeps [`NodeStats::from_snapshot`] and the `stats-registry`
    /// lint honest.
    pub(crate) fn register() -> NodeMetrics {
        let r = Registry::new();
        let c = |name: &str, help: &str| r.counter(name, Unit::Count, help, Determinism::Measured);
        NodeMetrics {
            local_hits: c("local_hits", "requests served from the local cache"),
            peer_hits: c("peer_hits", "requests served by a direct peer transfer"),
            origin_fetches: c("origin_fetches", "requests served by the origin"),
            false_positives: c("false_positives", "peer probes answered NotFound"),
            updates_sent: c("updates_sent", "hint-update records sent"),
            updates_received: c("updates_received", "hint-update records received"),
            pushes_received: c("pushes_received", "objects pushed by peers"),
            updates_filtered: c(
                "updates_filtered",
                "updates not re-propagated (3.1.2 filter)",
            ),
            heartbeats_ok: c("heartbeats_ok", "heartbeats a neighbor answered"),
            heartbeats_failed: c("heartbeats_failed", "heartbeats a neighbor missed"),
            peers_confirmed_dead: c("peers_confirmed_dead", "neighbors confirmed dead"),
            stale_hints_gc: c("stale_hints_gc", "stale hints purged on confirmed death"),
            plaxton_repair_entries: c(
                "plaxton_repair_entries",
                "Plaxton table entries rewritten by churn repair",
            ),
            degraded_to_origin: c(
                "degraded_to_origin",
                "probes that failed at transport and fell back to origin",
            ),
            parent_rehomes: c(
                "parent_rehomes",
                "fallback parents adopted after a parent death",
            ),
            resyncs_served: c("resyncs_served", "anti-entropy resyncs answered"),
            service_errors: c("service_errors", "request service paths that failed"),
            admission_rejects: c(
                "admission_rejects",
                "Gets redirected to origin by worker-queue admission control",
            ),
            queue_saturation_events: c(
                "queue_saturation_events",
                "times the worker queue crossed its high-water mark",
            ),
            hint_batch_overflow: c(
                "hint_batch_overflow",
                "hint updates dropped by the bounded coalescing buffer",
            ),
            wakeups_coalesced: c(
                "wakeups_coalesced",
                "shard wake-ups absorbed by an already-pending wake",
            ),
            writev_batches: c(
                "writev_batches",
                "vectored flushes draining >1 reply frame per syscall",
            ),
            hint_log_replay_micros: r.counter(
                "hint_log_replay_micros",
                Unit::Micros,
                "time spent replaying the durable hint log at spawn",
                Determinism::Measured,
            ),
            hints_recovered_from_log: c(
                "hints_recovered_from_log",
                "hint records recovered by the spawn-time log replay",
            ),
            hint_auth_failures: c(
                "hint_auth_failures",
                "received hint batches whose authenticator failed",
            ),
            pool_quarantined_peers: r.gauge(
                "pool_quarantined_peers",
                Unit::Peers,
                "peers currently under quarantine backoff",
                Determinism::Measured,
            ),
            pool_live_connections: r.gauge(
                "pool_live_connections",
                Unit::Connections,
                "warm pooled connections currently idle",
                Determinism::Measured,
            ),
            pool_reconnect_attempts: r.gauge(
                "pool_reconnect_attempts",
                Unit::Count,
                "outbound request retries performed by the pool",
                Determinism::Measured,
            ),
            request_service_micros: r.histogram(
                "request_service_micros",
                Unit::Micros,
                "miss-service latency through handle_get",
                Determinism::Measured,
                &SERVICE_LATENCY_BOUNDS_US,
            ),
            registry: r,
        }
    }

    /// Refreshes the pool gauges from `pool` and snapshots the whole
    /// registry, sorted by name. This is the one scrape path: the wire
    /// `Stats` frame, `CacheNode::stats()`, and the chaos dump all read
    /// this list.
    pub(crate) fn snapshot_with_pool(&self, pool: &ConnectionPool) -> Vec<MetricEntry> {
        self.pool_quarantined_peers
            .set(pool.quarantined_peer_count() as u64);
        self.pool_live_connections
            .set(pool.total_idle_connections() as u64);
        self.pool_reconnect_attempts.set(pool.stats().retries);
        self.registry.snapshot()
    }

    /// The metric catalog (name, unit, help) for operator surfaces.
    pub(crate) fn catalog(&self) -> Vec<MetricInfo> {
        self.registry.catalog()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_node_stats_field_has_a_registered_metric() {
        let m = NodeMetrics::register();
        m.local_hits.add(1);
        m.peer_hits.add(2);
        m.origin_fetches.add(3);
        m.false_positives.add(4);
        m.updates_sent.add(5);
        m.updates_received.add(6);
        m.pushes_received.add(7);
        m.updates_filtered.add(8);
        m.heartbeats_ok.add(9);
        m.heartbeats_failed.add(10);
        m.peers_confirmed_dead.add(11);
        m.stale_hints_gc.add(12);
        m.plaxton_repair_entries.add(13);
        m.degraded_to_origin.add(14);
        m.parent_rehomes.add(17);
        m.resyncs_served.add(15);
        m.service_errors.add(16);
        m.admission_rejects.add(18);
        m.queue_saturation_events.add(19);
        m.hint_batch_overflow.add(20);
        m.wakeups_coalesced.add(21);
        m.writev_batches.add(22);
        m.hint_log_replay_micros.add(23);
        m.hints_recovered_from_log.add(24);
        m.hint_auth_failures.add(25);
        let snap = m.registry.snapshot();
        let stats = NodeStats::from_snapshot(&snap);
        assert_eq!(
            stats,
            NodeStats {
                local_hits: 1,
                peer_hits: 2,
                origin_fetches: 3,
                false_positives: 4,
                updates_sent: 5,
                updates_received: 6,
                pushes_received: 7,
                updates_filtered: 8,
                heartbeats_ok: 9,
                heartbeats_failed: 10,
                peers_confirmed_dead: 11,
                stale_hints_gc: 12,
                plaxton_repair_entries: 13,
                degraded_to_origin: 14,
                parent_rehomes: 17,
                resyncs_served: 15,
                service_errors: 16,
                admission_rejects: 18,
                queue_saturation_events: 19,
                hint_batch_overflow: 20,
                wakeups_coalesced: 21,
                writev_batches: 22,
                hint_log_replay_micros: 23,
                hints_recovered_from_log: 24,
                hint_auth_failures: 25,
            }
        );
    }

    #[test]
    fn from_snapshot_ignores_non_stats_entries() {
        let entries = vec![
            MetricEntry {
                name: "local_hits".into(),
                value: 5,
            },
            MetricEntry {
                name: "pool_quarantined_peers".into(),
                value: 2,
            },
            MetricEntry {
                name: "request_service_micros.count".into(),
                value: 9,
            },
        ];
        let stats = NodeStats::from_snapshot(&entries);
        assert_eq!(stats.local_hits, 5);
        assert_eq!(
            stats,
            NodeStats {
                local_hits: 5,
                ..NodeStats::default()
            }
        );
    }

    #[test]
    fn catalog_covers_every_counter_and_gauge() {
        let m = NodeMetrics::register();
        let names: Vec<String> = m.catalog().into_iter().map(|i| i.name).collect();
        for required in [
            "local_hits",
            "service_errors",
            "admission_rejects",
            "queue_saturation_events",
            "hint_batch_overflow",
            "wakeups_coalesced",
            "writev_batches",
            "hint_log_replay_micros",
            "hints_recovered_from_log",
            "hint_auth_failures",
            "pool_quarantined_peers",
            "pool_live_connections",
            "pool_reconnect_attempts",
            "request_service_micros",
        ] {
            assert!(names.iter().any(|n| n == required), "missing {required}");
        }
    }
}
