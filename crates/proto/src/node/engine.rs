//! The sharded connection engine: a fixed set of epoll shard threads owns
//! every accepted socket, and a bounded worker pool services `Get`
//! requests (which may touch the network).
//!
//! Division of labor:
//!
//! * the **accept thread** blocks in `accept()` and deals new connections
//!   round-robin to the shards through an injection channel + waker;
//! * each **shard thread** runs a level-triggered epoll loop over its
//!   connections, assembling frames incrementally and answering every
//!   local-state frame (`PeerGet`, `UpdateBatch`/`HintBatch`, `Push`,
//!   `FindNearest`) inline — a shard never performs outbound I/O, which
//!   is what makes peer-to-peer probing deadlock-free on a bounded
//!   thread count;
//! * `Get` frames that hit the local data cache are also answered on the
//!   shard (pure in-memory work); the rest are handed to the **worker
//!   pool**, which writes the reply straight to the client socket through
//!   the connection's shared write state — the owning shard is only poked
//!   (rare on loopback) when a short write leaves bytes pending and
//!   `EPOLLOUT` interest must be armed.
//!
//! Per-connection ordering: a connection with a `Get` in flight (`busy`)
//! parks subsequent frames in a backlog; whoever finishes the `Get`
//! replays them under the connection lock, so replies always match
//! request order even though local frames are cheap and `Get`s are not.
//!
//! Lock order: a connection's state lock may be taken before the node's
//! store lock (frame handling under the connection lock), never the other
//! way around — nothing touches connection state while holding the store.

use super::{handle_get, local_hit, local_response, trace_event, Inner};
use crate::wire::{FrameAssembler, Message, ServedBy, Status};
use bh_netpoll::{waker_pair, Event, Interest, Poller, WakeReceiver, Waker};
use bh_obs::span;
use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender};

/// Token reserved for each shard's wake-up descriptor.
const WAKER_TOKEN: u64 = 0;

/// How long a shard sleeps in `epoll_wait` with nothing to do. Wake-ups
/// normally arrive via the waker; the timeout is a shutdown backstop.
const IDLE_WAIT: Duration = Duration::from_millis(500);

/// Work injected into a shard from outside its epoll loop.
enum Injected {
    /// A freshly accepted connection to adopt.
    Conn(TcpStream),
    /// A writer left connection `token` with queued bytes; arm `EPOLLOUT`.
    WantWrite { token: u64 },
}

/// A `Get` checked out to the worker pool.
struct WorkerJob {
    shard: usize,
    token: u64,
    url: String,
    conn: Arc<SharedConn>,
}

/// Admission-controlled handle to the worker-pool job channel.
///
/// Depth is tracked with a shared counter: enqueue increments, a worker
/// dequeue decrements. Past the high-water mark new `Get`s are turned
/// away with a redirect-to-origin reply instead of queueing unboundedly
/// behind a slow origin — the client is closer to the origin than to a
/// saturated cache (the paper's "the cache must stay cheaper than going
/// direct" argument, applied as backpressure).
#[derive(Clone)]
struct JobQueue {
    tx: Sender<WorkerJob>,
    depth: Arc<AtomicUsize>,
    saturated: Arc<AtomicBool>,
    high_water: usize,
}

impl JobQueue {
    /// Admission check: `Ok` when the job may be enqueued, `Err(depth)`
    /// when it must be rejected. Counts one `queue_saturation_events`
    /// per episode (the rising edge of the mark, not every reject); the
    /// episode ends once the queue drains back to half the mark.
    fn admit(&self, inner: &Inner) -> Result<(), usize> {
        let depth = self.depth.load(Ordering::Relaxed);
        if depth >= self.high_water {
            if !self.saturated.swap(true, Ordering::Relaxed) {
                inner.metrics.queue_saturation_events.inc();
                trace_event(
                    inner,
                    span::QUEUE_SATURATION,
                    depth as u64,
                    self.high_water as u64,
                );
            }
            Err(depth)
        } else {
            if self.saturated.load(Ordering::Relaxed) && depth <= self.high_water / 2 {
                self.saturated.store(false, Ordering::Relaxed);
            }
            Ok(())
        }
    }

    fn send(&self, job: WorkerJob) -> Result<(), channel::SendError<WorkerJob>> {
        self.depth.fetch_add(1, Ordering::Relaxed);
        let sent = self.tx.send(job);
        if sent.is_err() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
        }
        sent
    }

    /// A worker checked a job out of the channel.
    fn job_done(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Writes the admission-control rejection: a `Redirect` reply telling the
/// client to fetch from the origin directly. Callers hold the connection
/// lock.
fn reject_get(
    inner: &Inner,
    stream: &TcpStream,
    state: &mut ConnState,
    scratch: &mut BytesMut,
    url: &str,
    depth: usize,
) {
    inner.metrics.admission_rejects.inc();
    trace_event(
        inner,
        span::ADMISSION_REJECT,
        bh_md5::url_key(url),
        depth as u64,
    );
    let reply = Message::GetReply {
        status: Status::Redirect,
        version: 0,
        served_by: ServedBy::Origin,
        body: Bytes::new(),
    };
    reply.encode(scratch);
    send_frame(stream, state, scratch);
}

/// Everything `CacheNode::spawn` needs to own the running engine.
pub(super) struct Engine {
    pub(super) threads: Vec<std::thread::JoinHandle<()>>,
    pub(super) wakers: Vec<Waker>,
}

/// Spawns the accept thread, shard threads, and worker pool.
pub(super) fn spawn(listener: TcpListener, inner: Arc<Inner>) -> io::Result<Engine> {
    let shards = inner.config.shards.max(1);
    let workers = inner.config.workers.max(1);
    let addr = listener.local_addr()?;

    let mut handles: Vec<(Sender<Injected>, Waker)> = Vec::with_capacity(shards);
    let mut loops = Vec::with_capacity(shards);
    for _ in 0..shards {
        let poller = Poller::new()?;
        let (waker, wake_rx) = waker_pair()?;
        poller.register(&wake_rx, WAKER_TOKEN, Interest::READABLE)?;
        let (tx, rx) = channel::unbounded();
        handles.push((tx, waker));
        loops.push((poller, wake_rx, rx));
    }

    let (job_tx, job_rx) = channel::unbounded::<WorkerJob>();
    let jobs = JobQueue {
        tx: job_tx,
        depth: Arc::new(AtomicUsize::new(0)),
        saturated: Arc::new(AtomicBool::new(false)),
        // Default high-water mark: enough queued Gets to keep every worker
        // busy through a burst, small enough that a stalled origin turns
        // into redirects instead of unbounded memory.
        high_water: inner
            .config
            .admission_high_water
            .unwrap_or_else(|| (workers * 64).max(256)),
    };
    let mut threads = Vec::with_capacity(workers + shards + 1);

    for w in 0..workers {
        let job_rx = job_rx.clone();
        let jobs = jobs.clone();
        let handles = clone_handles(&handles)?;
        let inner = Arc::clone(&inner);
        threads.push(
            std::thread::Builder::new()
                .name(format!("cache-worker-{addr}-{w}"))
                .spawn(move || worker_loop(job_rx, jobs, handles, inner))?,
        );
    }

    for (i, (poller, wake_rx, rx)) in loops.into_iter().enumerate() {
        let inner = Arc::clone(&inner);
        let jobs = jobs.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("cache-shard-{addr}-{i}"))
                .spawn(move || {
                    Shard::new(i, poller, wake_rx, rx, jobs, inner).run();
                })?,
        );
    }
    drop(jobs);

    let wakers = handles
        .iter()
        .map(|(_, w)| w.try_clone())
        .collect::<io::Result<Vec<_>>>()?;
    {
        let inner = Arc::clone(&inner);
        threads.push(
            std::thread::Builder::new()
                .name(format!("cache-accept-{addr}"))
                .spawn(move || accept_loop(listener, handles, inner))?,
        );
    }

    Ok(Engine { threads, wakers })
}

fn clone_handles(
    handles: &[(Sender<Injected>, Waker)],
) -> io::Result<Vec<(Sender<Injected>, Waker)>> {
    handles
        .iter()
        .map(|(tx, w)| Ok((tx.clone(), w.try_clone()?)))
        .collect()
}

/// Deals accepted connections round-robin across the shards. Holding the
/// shard senders here (and dropping them on exit) is what lets the shard
/// loops observe engine teardown.
fn accept_loop(listener: TcpListener, handles: Vec<(Sender<Injected>, Waker)>, inner: Arc<Inner>) {
    let mut next = 0usize;
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let (tx, waker) = &handles[next % handles.len()];
        next = next.wrapping_add(1);
        if tx.send(Injected::Conn(stream)).is_ok() && !waker.wake() {
            inner.metrics.wakeups_coalesced.inc();
        }
    }
}

/// Services `Get` jobs; each may probe a peer and fall back to the origin
/// through the pooled transport, then completes the request directly on
/// the connection (writing the reply and replaying the backlog), poking
/// the owning shard only if queued bytes remain.
fn worker_loop(
    job_rx: Receiver<WorkerJob>,
    jobs: JobQueue,
    handles: Vec<(Sender<Injected>, Waker)>,
    inner: Arc<Inner>,
) {
    // Reply frames are encoded into this reusable scratch buffer; the
    // fast path writes it straight to the socket, so the steady state is
    // zero allocations per reply.
    let mut scratch = BytesMut::with_capacity(4096);
    loop {
        // Workers hold a `JobQueue` clone (backlog replays enqueue
        // follow-up jobs), so the channel never disconnects on its own —
        // poll the shutdown flag instead of blocking forever.
        let job = match job_rx.recv_timeout(Duration::from_millis(50)) {
            Ok(job) => job,
            Err(channel::RecvTimeoutError::Timeout) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(channel::RecvTimeoutError::Disconnected) => break,
        };
        jobs.job_done();
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let reply = handle_get(&inner, &job.url);
        let wants_write = {
            // bh-lint: allow(lock-order, reason = "the per-connection state lock IS the frame-write serializer; the socket is nonblocking, so writes under it only fill the kernel buffer and queue the rest")
            let mut state = job.conn.state.lock();
            let was_closed = state.closed;
            reply.encode(&mut scratch);
            send_frame(&job.conn.stream, &mut state, &scratch);
            if state.closed && !was_closed {
                // The reply could not be delivered (socket died mid-write);
                // account it instead of wedging or panicking the worker.
                inner.metrics.service_errors.inc();
            }
            state.busy = false;
            replay_backlog(
                &job.conn,
                &mut state,
                &inner,
                &jobs,
                &mut scratch,
                job.shard,
                job.token,
            );
            !state.closed && state.wants_write()
        };
        if wants_write {
            let (tx, waker) = &handles[job.shard];
            if tx.send(Injected::WantWrite { token: job.token }).is_ok() && !waker.wake() {
                inner.metrics.wakeups_coalesced.inc();
            }
        }
    }
}

/// Replays parked frames until the backlog drains or another `Get` checks
/// out. Runs under the connection lock, on whichever thread cleared
/// `busy` (a worker finishing a `Get`, usually).
fn replay_backlog(
    conn: &Arc<SharedConn>,
    state: &mut ConnState,
    inner: &Arc<Inner>,
    jobs: &JobQueue,
    scratch: &mut BytesMut,
    shard: usize,
    token: u64,
) {
    while !state.busy && !state.closed {
        let Some(msg) = state.backlog.pop_front() else {
            break;
        };
        match msg {
            Message::Get { url } => {
                if inner.drained() {
                    reject_get(inner, &conn.stream, state, scratch, &url, 0);
                } else if let Some(reply) = local_hit(inner, &url) {
                    reply.encode(scratch);
                    send_frame(&conn.stream, state, scratch);
                } else if let Err(depth) = jobs.admit(inner) {
                    reject_get(inner, &conn.stream, state, scratch, &url, depth);
                } else {
                    state.busy = true;
                    let job = WorkerJob {
                        shard,
                        token,
                        url,
                        conn: Arc::clone(conn),
                    };
                    if jobs.send(job).is_err() {
                        state.closed = true;
                        inner.metrics.service_errors.inc();
                    }
                }
            }
            other => {
                let reply = local_response(inner, other);
                reply.encode(scratch);
                send_frame(&conn.stream, state, scratch);
            }
        }
    }
}

/// Write-side state of a connection, shared between the owning shard and
/// any worker finishing a `Get` for it.
struct ConnState {
    /// Reply frames queued for writing, oldest first; `front_pos` marks
    /// how much of the front frame already left. Keeping whole frames
    /// (refcounted `Bytes`) instead of one flat byte buffer is what lets
    /// the flush path hand the entire queue to `writev` in one syscall.
    out: VecDeque<Bytes>,
    front_pos: usize,
    /// A `Get` is checked out to the worker pool; further frames wait in
    /// `backlog` so replies keep request order.
    busy: bool,
    backlog: VecDeque<Message>,
    /// Set once the shard abandons the connection (or the engine is
    /// tearing down); writers stop touching the socket.
    closed: bool,
}

impl ConnState {
    fn wants_write(&self) -> bool {
        !self.out.is_empty()
    }
}

/// A connection as seen by both the shard (reads, epoll) and the workers
/// (direct reply writes). The stream itself is never cloned: both sides
/// write through `&TcpStream`, serialized by the state lock.
struct SharedConn {
    stream: TcpStream,
    state: Mutex<ConnState>,
}

/// Shard-private bookkeeping for one connection.
struct ShardConn {
    shared: Arc<SharedConn>,
    /// Frame reassembly is shard-only — only the shard reads the socket.
    assembler: FrameAssembler,
    /// Interest currently registered with the poller (avoids redundant
    /// `epoll_ctl` calls).
    interest: Interest,
}

struct Shard {
    id: usize,
    poller: Poller,
    wake_rx: WakeReceiver,
    inject_rx: Receiver<Injected>,
    jobs: JobQueue,
    inner: Arc<Inner>,
    conns: HashMap<u64, ShardConn>,
    next_token: u64,
    /// Reusable encode buffer for replies answered on the shard itself.
    scratch: BytesMut,
}

impl Shard {
    fn new(
        id: usize,
        poller: Poller,
        wake_rx: WakeReceiver,
        inject_rx: Receiver<Injected>,
        jobs: JobQueue,
        inner: Arc<Inner>,
    ) -> Self {
        Shard {
            id,
            poller,
            wake_rx,
            inject_rx,
            jobs,
            inner,
            conns: HashMap::new(),
            next_token: WAKER_TOKEN + 1,
            scratch: BytesMut::with_capacity(4096),
        }
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::with_capacity(128);
        while !self.inner.shutdown.load(Ordering::SeqCst) {
            events.clear();
            if self.poller.wait(&mut events, Some(IDLE_WAIT)).is_err() {
                break;
            }
            self.wake_rx.drain();
            self.drain_injections();
            for &event in &events {
                if event.token == WAKER_TOKEN {
                    continue;
                }
                self.service(event);
            }
        }
        // Mark every connection closed so in-flight workers stop writing.
        for conn in self.conns.values() {
            conn.shared.state.lock().closed = true;
        }
    }

    fn drain_injections(&mut self) {
        while let Ok(injected) = self.inject_rx.try_recv() {
            match injected {
                Injected::Conn(stream) => self.adopt(stream),
                Injected::WantWrite { token } => self.flush_and_rearm(token),
            }
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .register(&stream, token, Interest::READABLE)
            .is_ok()
        {
            let shared = Arc::new(SharedConn {
                stream,
                state: Mutex::new(ConnState {
                    out: VecDeque::new(),
                    front_pos: 0,
                    busy: false,
                    backlog: VecDeque::new(),
                    closed: false,
                }),
            });
            self.conns.insert(
                token,
                ShardConn {
                    shared,
                    assembler: FrameAssembler::new(),
                    interest: Interest::READABLE,
                },
            );
        }
    }

    /// Handles readiness for one connection.
    fn service(&mut self, event: Event) {
        let token = event.token;
        // Chaos hook: injected inbound service delay, applied before the
        // shard touches the socket. One relaxed load when disarmed.
        if let Some(delay) = self.inner.pool.fault_switch().rx_latency() {
            std::thread::sleep(delay);
        }
        if event.needs_read() && !self.read_ready(token) {
            self.close(token);
            return;
        }
        self.flush_and_rearm(token);
    }

    /// Pulls bytes, assembles frames, dispatches them. Returns false when
    /// the connection is finished (EOF, error, or unframeable input).
    fn read_ready(&mut self, token: u64) -> bool {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            match (&conn.shared.stream).read(&mut buf) {
                Ok(0) => return false,
                Ok(n) => {
                    conn.assembler.extend(&buf[..n]);
                    loop {
                        let Some(conn) = self.conns.get_mut(&token) else {
                            return false;
                        };
                        match conn.assembler.next_message() {
                            Ok(Some(msg)) => {
                                if !self.deliver(token, msg) {
                                    return false;
                                }
                            }
                            Ok(None) => break,
                            Err(_) => return false,
                        }
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Routes one frame under the connection lock: parked if a `Get` is in
    /// flight, a missing `Get` to the worker pool, everything else
    /// (including locally-hit `Get`s) answered inline. Returns false when
    /// the connection should be torn down.
    fn deliver(&mut self, token: u64, msg: Message) -> bool {
        let Some(conn) = self.conns.get(&token) else {
            return false;
        };
        let shared = Arc::clone(&conn.shared);
        // bh-lint: allow(lock-order, reason = "the per-connection state lock IS the frame-write serializer; the socket is nonblocking, so writes under it only fill the kernel buffer and queue the rest")
        let mut state = shared.state.lock();
        if state.closed {
            return false;
        }
        if state.busy {
            state.backlog.push_back(msg);
            return true;
        }
        match msg {
            Message::Get { url } => {
                // Drain (mesh API) outranks the local-hit fast path: a
                // drained node turns every client `Get` away.
                if self.inner.drained() {
                    reject_get(
                        &self.inner,
                        &shared.stream,
                        &mut state,
                        &mut self.scratch,
                        &url,
                        0,
                    );
                } else if let Some(reply) = local_hit(&self.inner, &url) {
                    reply.encode(&mut self.scratch);
                    send_frame(&shared.stream, &mut state, &self.scratch);
                } else if let Err(depth) = self.jobs.admit(&self.inner) {
                    reject_get(
                        &self.inner,
                        &shared.stream,
                        &mut state,
                        &mut self.scratch,
                        &url,
                        depth,
                    );
                } else {
                    state.busy = true;
                    let job = WorkerJob {
                        shard: self.id,
                        token,
                        url,
                        conn: Arc::clone(&shared),
                    };
                    if self.jobs.send(job).is_err() {
                        // Engine tearing down; the connection dies with it.
                        self.inner.metrics.service_errors.inc();
                        return false;
                    }
                }
            }
            other => {
                let reply = local_response(&self.inner, other);
                reply.encode(&mut self.scratch);
                send_frame(&shared.stream, &mut state, &self.scratch);
            }
        }
        !state.closed
    }

    /// Pushes queued bytes and keeps the poller's interest set in sync
    /// with whether a write is still pending.
    fn flush_and_rearm(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let want = {
            // bh-lint: allow(lock-order, reason = "draining queued bytes to the nonblocking socket is exactly what this lock serializes; write_some returns WouldBlock instead of waiting")
            let mut state = conn.shared.state.lock();
            if write_some(&conn.shared.stream, &mut state, &self.inner).is_err() {
                drop(state);
                self.close(token);
                return;
            }
            if state.wants_write() {
                Interest::BOTH
            } else {
                Interest::READABLE
            }
        };
        if conn.interest != want {
            if self
                .poller
                .modify(&conn.shared.stream, token, want)
                .is_err()
            {
                self.close(token);
                return;
            }
            conn.interest = want;
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            conn.shared.state.lock().closed = true;
            let _ = self.poller.deregister(&conn.shared.stream);
        }
    }
}

/// Queues an encoded frame on a connection, writing it straight to the
/// socket when nothing is already queued — the common case, which skips a
/// full copy of the frame (reply bodies dominate the bytes moved). Only
/// the unsent tail, if any, is buffered. Callers hold the connection lock.
fn send_frame(stream: &TcpStream, state: &mut ConnState, frame: &[u8]) {
    if state.closed {
        return;
    }
    let mut sent = 0;
    if !state.wants_write() {
        while sent < frame.len() {
            match (&*stream).write(&frame[sent..]) {
                Ok(0) => {
                    state.closed = true;
                    return;
                }
                Ok(n) => sent += n,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    state.closed = true;
                    return;
                }
            }
        }
    }
    if sent < frame.len() {
        // bh-lint: allow(no-hot-alloc, reason = "only the unsent tail of a short write is copied; the fast path above writes the caller's scratch buffer in place")
        state.out.push_back(Bytes::from(frame[sent..].to_vec()));
    }
}

/// Writes as much of the out-queue as the socket accepts right now, whole
/// frames gathered into one `writev` per syscall. Callers hold the
/// connection lock.
fn write_some(stream: &TcpStream, state: &mut ConnState, inner: &Inner) -> io::Result<()> {
    while state.wants_write() {
        let empty: &[u8] = &[];
        let mut bufs = [IoSlice::new(empty); bh_netpoll::MAX_IOV];
        let mut cnt = 0usize;
        for (i, frame) in state.out.iter().take(bh_netpoll::MAX_IOV).enumerate() {
            bufs[i] = IoSlice::new(if i == 0 {
                &frame[state.front_pos..]
            } else {
                frame
            });
            cnt += 1;
        }
        let wrote = match bh_netpoll::write_vectored(stream, &bufs[..cnt]) {
            Ok(0) => return Err(io::Error::from(io::ErrorKind::WriteZero)),
            Ok(n) => n,
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) => return Err(e),
        };
        if cnt > 1 {
            inner.metrics.writev_batches.inc();
        }
        let mut remaining = wrote;
        while remaining > 0 && !state.out.is_empty() {
            let front_left = state.out[0].len() - state.front_pos;
            if remaining >= front_left {
                remaining -= front_left;
                state.out.pop_front();
                state.front_pos = 0;
            } else {
                state.front_pos += remaining;
                remaining = 0;
            }
        }
    }
    Ok(())
}
