//! A minimal origin server: the authoritative store the cache system
//! fetches from on a miss.
//!
//! Unknown URLs are served with deterministic synthetic content (size
//! derived from the URL key), so workload replay needs no setup; tests
//! install explicit bodies and bump versions with
//! [`Message::OriginPut`] to drive consistency scenarios.

use crate::wire::{read_message, write_message, Message, ServedBy, Status};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Live accepted connections, keyed by a per-connection id so each serving
/// thread can drop its own entry when the peer hangs up (otherwise the
/// registry would leak one fd per connection for the server's lifetime).
type ConnRegistry = Arc<Mutex<HashMap<u64, TcpStream>>>;

#[derive(Debug, Default)]
struct OriginState {
    objects: HashMap<String, (u32, Bytes)>,
}

/// Handle to a running origin server; dropping it shuts the server down.
#[derive(Debug)]
pub struct OriginServer {
    addr: SocketAddr,
    state: Arc<Mutex<OriginState>>,
    shutdown: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    conns: ConnRegistry,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl OriginServer {
    /// Binds and spawns the server (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn(bind: impl ToSocketAddrs) -> io::Result<Self> {
        Self::spawn_with_delay(bind, Duration::ZERO)
    }

    /// Like [`OriginServer::spawn`], but every `Get`/`PeerGet` is served
    /// after `delay` — a stand-in for the WAN round trip to a distant
    /// origin (the paper's setting: caches are nearby, the server is
    /// across the Internet), so experiments can price misses realistically.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn_with_delay(bind: impl ToSocketAddrs, delay: Duration) -> io::Result<Self> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(Mutex::new(OriginState::default()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));

        let conns: ConnRegistry = Arc::new(Mutex::new(HashMap::new()));
        let state2 = Arc::clone(&state);
        let shutdown2 = Arc::clone(&shutdown);
        let requests2 = Arc::clone(&requests);
        let conns2 = Arc::clone(&conns);
        let handle = std::thread::Builder::new()
            .name(format!("origin-{addr}"))
            .spawn(move || accept_loop(listener, state2, shutdown2, requests2, conns2, delay))
            .expect("spawn origin thread");

        Ok(OriginServer {
            addr,
            state,
            shutdown,
            requests,
            conns,
            handle: Some(handle),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of `Get` requests served (every one is a cache-system miss).
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Installs (or updates) an object directly, bypassing the network.
    pub fn put(&self, url: &str, version: u32, body: impl Into<Bytes>) {
        self.state
            .lock()
            .objects
            .insert(url.to_string(), (version, body.into()));
    }

    /// The currently served version of `url` (0 for synthetic objects).
    pub fn version_of(&self, url: &str) -> u32 {
        self.state
            .lock()
            .objects
            .get(url)
            .map(|(v, _)| *v)
            .unwrap_or(0)
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Nudge the blocking accept() awake.
        let _ = TcpStream::connect(self.addr);
        // Sever live connections too, so shutdown means "the process died"
        // even to clients holding warm pooled connections.
        for (_, conn) in self.conns.lock().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for OriginServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    state: Arc<Mutex<OriginState>>,
    shutdown: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    conns: ConnRegistry,
    delay: Duration,
) {
    let mut next_id: u64 = 0;
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let id = next_id;
        next_id += 1;
        if let Ok(clone) = stream.try_clone() {
            conns.lock().insert(id, clone);
        }
        let state = Arc::clone(&state);
        let requests = Arc::clone(&requests);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("origin-conn".to_string())
            .spawn(move || {
                let _ = serve_connection(stream, state, requests, delay);
                conns.lock().remove(&id);
            })
            // bh-lint: allow(no-panic-hot-path, reason = "test-harness origin server; failing to spawn a connection thread is unrecoverable and loud beats silent")
            .expect("spawn connection thread");
    }
}

/// Deterministic body for URLs nobody installed: pseudo-random bytes whose
/// length is derived from the URL key (1–64 KiB), so replayed workloads get
/// stable, checkable content.
pub fn synthetic_body(url: &str) -> Bytes {
    let key = bh_md5::url_key(url);
    let len = 1024 + (key % (63 * 1024)) as usize;
    let mut out = Vec::with_capacity(len);
    let mut state = key | 1;
    while out.len() < len {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(len);
    Bytes::from(out)
}

fn serve_connection(
    mut stream: TcpStream,
    state: Arc<Mutex<OriginState>>,
    requests: Arc<AtomicU64>,
    delay: Duration,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    // Buffer the read side so a framed request is usually one syscall.
    let mut reader = io::BufReader::new(stream.try_clone()?);
    loop {
        let msg = match read_message(&mut reader) {
            Ok(m) => m,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        match msg {
            Message::Get { url } | Message::PeerGet { url } => {
                requests.fetch_add(1, Ordering::Relaxed);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                let (version, body) = {
                    let st = state.lock();
                    match st.objects.get(&url) {
                        Some((v, b)) => (*v, b.clone()),
                        None => (0, synthetic_body(&url)),
                    }
                };
                write_message(
                    &mut stream,
                    &Message::GetReply {
                        status: Status::Ok,
                        version,
                        served_by: ServedBy::Origin,
                        body,
                    },
                )?;
            }
            Message::OriginPut { url, version, body } => {
                state.lock().objects.insert(url, (version, body));
                write_message(&mut stream, &Message::Ack)?;
            }
            other => {
                let _ = other;
                write_message(
                    &mut stream,
                    &Message::GetReply {
                        status: Status::Error,
                        version: 0,
                        served_by: ServedBy::Origin,
                        body: Bytes::new(),
                    },
                )?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(addr: SocketAddr, msg: &Message) -> Message {
        let mut s = TcpStream::connect(addr).expect("connect");
        write_message(&mut s, msg).expect("write");
        read_message(&mut s).expect("read")
    }

    #[test]
    fn serves_synthetic_content_deterministically() {
        let origin = OriginServer::spawn("127.0.0.1:0").expect("spawn");
        let m1 = request(
            origin.addr(),
            &Message::Get {
                url: "http://t.test/a".into(),
            },
        );
        let m2 = request(
            origin.addr(),
            &Message::Get {
                url: "http://t.test/a".into(),
            },
        );
        let Message::GetReply {
            status,
            body: b1,
            served_by,
            ..
        } = m1
        else {
            panic!("unexpected reply {m1:?}")
        };
        let Message::GetReply { body: b2, .. } = m2 else {
            panic!("unexpected reply")
        };
        assert_eq!(status, Status::Ok);
        assert_eq!(served_by, ServedBy::Origin);
        assert_eq!(b1, b2);
        assert!(b1.len() >= 1024);
        assert_eq!(origin.request_count(), 2);
    }

    #[test]
    fn distinct_urls_distinct_bodies() {
        assert_ne!(
            synthetic_body("http://a.test/1"),
            synthetic_body("http://a.test/2")
        );
    }

    #[test]
    fn origin_put_overrides_and_versions() {
        let origin = OriginServer::spawn("127.0.0.1:0").expect("spawn");
        let ack = request(
            origin.addr(),
            &Message::OriginPut {
                url: "http://t.test/v".into(),
                version: 3,
                body: Bytes::from_static(b"v3!"),
            },
        );
        assert_eq!(ack, Message::Ack);
        assert_eq!(origin.version_of("http://t.test/v"), 3);
        let reply = request(
            origin.addr(),
            &Message::Get {
                url: "http://t.test/v".into(),
            },
        );
        let Message::GetReply { version, body, .. } = reply else {
            panic!("bad reply")
        };
        assert_eq!(version, 3);
        assert_eq!(&body[..], b"v3!");
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let origin = OriginServer::spawn("127.0.0.1:0").expect("spawn");
        let addr = origin.addr();
        origin.shutdown();
        // Subsequent connections must fail or be closed without replies.
        let err = TcpStream::connect(addr)
            .and_then(|mut s| {
                write_message(
                    &mut s,
                    &Message::Get {
                        url: "http://x/".into(),
                    },
                )?;
                read_message(&mut s)
            })
            .is_err();
        assert!(err, "server should be down after shutdown");
    }
}
