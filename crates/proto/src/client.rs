//! Blocking client helpers for talking to cache nodes.

use crate::wire::{
    read_message, write_message, MachineId, Message, MetaEntry, MetaOp, MetaStatus, MetricEntry,
    ServedBy, Status, TraceEvent,
};
use bytes::Bytes;
use std::io;
use std::net::{SocketAddr, TcpStream};

/// Where a fetched object was served from, as observed by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The contacted node's own cache (an L1 hit).
    Local,
    /// A peer cache via a direct cache-to-cache transfer.
    Peer(MachineId),
    /// The origin server.
    Origin,
    /// The node's admission control turned the request away: the client
    /// should fetch from the origin directly (the body is empty).
    Redirected,
}

/// Fetches `url` through the cache node at `addr`.
///
/// # Errors
///
/// Fails on connection/protocol errors or an error reply.
pub fn fetch(addr: SocketAddr, url: &str) -> io::Result<(Source, Bytes)> {
    let mut conn = Connection::open(addr)?;
    conn.fetch(url)
}

/// A reusable client connection to one cache node.
///
/// Replies are read through a buffer so a framed message usually costs one
/// `read` syscall instead of one per framing layer.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    reader: io::BufReader<TcpStream>,
}

impl Connection {
    /// Opens a connection.
    ///
    /// # Errors
    ///
    /// Propagates connect errors.
    pub fn open(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = io::BufReader::new(stream.try_clone()?);
        Ok(Connection { stream, reader })
    }

    /// Fetches one URL over this connection.
    ///
    /// # Errors
    ///
    /// Fails on protocol errors or an [`Status::Error`] reply.
    pub fn fetch(&mut self, url: &str) -> io::Result<(Source, Bytes)> {
        write_message(
            &mut self.stream,
            &Message::Get {
                url: url.to_string(),
            },
        )?;
        match read_message(&mut self.reader)? {
            Message::GetReply {
                status: Status::Ok,
                served_by,
                body,
                ..
            } => {
                let source = match served_by {
                    ServedBy::Local => Source::Local,
                    ServedBy::Peer(m) => Source::Peer(m),
                    ServedBy::Origin => Source::Origin,
                };
                Ok((source, body))
            }
            Message::GetReply {
                status: Status::Redirect,
                body,
                ..
            } => Ok((Source::Redirected, body)),
            Message::GetReply { status, .. } => {
                Err(io::Error::other(format!("fetch failed: {status:?}")))
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply {other:?}"),
            )),
        }
    }

    /// Pushes an object into the connected cache (the push-caching data
    /// path, §4).
    ///
    /// # Errors
    ///
    /// Fails on protocol errors.
    pub fn push(&mut self, url: &str, version: u32, body: impl Into<Bytes>) -> io::Result<()> {
        write_message(
            &mut self.stream,
            &Message::Push {
                url: url.to_string(),
                version,
                body: body.into(),
            },
        )?;
        match read_message(&mut self.reader)? {
            Message::Ack => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply {other:?}"),
            )),
        }
    }

    /// Issues a **find nearest** to the connected node's hint store.
    ///
    /// # Errors
    ///
    /// Fails on protocol errors.
    pub fn find_nearest(&mut self, key: u64) -> io::Result<Option<MachineId>> {
        write_message(&mut self.stream, &Message::FindNearest { key })?;
        match read_message(&mut self.reader)? {
            Message::FindNearestReply { location } => Ok(location),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply {other:?}"),
            )),
        }
    }

    /// Scrapes the node's full obs-registry snapshot (the `Stats`
    /// operator frame pair): every counter, pool gauge, and expanded
    /// service-latency histogram bucket, sorted by name.
    ///
    /// # Errors
    ///
    /// Fails on protocol errors.
    pub fn scrape_stats(&mut self) -> io::Result<Vec<MetricEntry>> {
        write_message(&mut self.stream, &Message::StatsRequest)?;
        match read_message(&mut self.reader)? {
            Message::StatsReply(entries) => Ok(entries),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply {other:?}"),
            )),
        }
    }

    /// Scrapes the node's event-trace ring (the `Trace` operator frame
    /// pair): the most recent service/propagation span events, oldest
    /// first.
    ///
    /// # Errors
    ///
    /// Fails on protocol errors.
    pub fn scrape_trace(&mut self) -> io::Result<Vec<TraceEvent>> {
        write_message(&mut self.stream, &Message::TraceRequest)?;
        match read_message(&mut self.reader)? {
            Message::TraceReply(events) => Ok(events),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply {other:?}"),
            )),
        }
    }

    /// One raw mesh-API exchange: status and entries exactly as the node
    /// answered them (no status-to-error mapping).
    ///
    /// # Errors
    ///
    /// Fails on connection/protocol errors only.
    pub fn meta(
        &mut self,
        op: MetaOp,
        path: &str,
        value: &str,
    ) -> io::Result<(MetaStatus, Vec<MetaEntry>)> {
        write_message(
            &mut self.stream,
            &Message::MetaRequest {
                op,
                path: path.to_string(),
                value: value.to_string(),
            },
        )?;
        match read_message(&mut self.reader)? {
            Message::MetaReply { status, entries } => Ok((status, entries)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply {other:?}"),
            )),
        }
    }

    /// Reads one namespace leaf or dumps one branch (`Get`), mapping any
    /// non-`Ok` status to an error.
    ///
    /// # Errors
    ///
    /// Fails on protocol errors or a non-`Ok` reply status.
    pub fn meta_get(&mut self, path: &str) -> io::Result<Vec<MetaEntry>> {
        meta_ok(path, self.meta(MetaOp::Get, path, "")?)
    }

    /// Enumerates one namespace branch (`List`), sorted, mapping any
    /// non-`Ok` status to an error.
    ///
    /// # Errors
    ///
    /// Fails on protocol errors or a non-`Ok` reply status.
    pub fn meta_list(&mut self, path: &str) -> io::Result<Vec<MetaEntry>> {
        meta_ok(path, self.meta(MetaOp::List, path, "")?)
    }

    /// Control-plane write (`Set`), mapping any non-`Ok` status to an
    /// error.
    ///
    /// # Errors
    ///
    /// Fails on protocol errors or a non-`Ok` reply status.
    pub fn meta_set(&mut self, path: &str, value: &str) -> io::Result<Vec<MetaEntry>> {
        meta_ok(path, self.meta(MetaOp::Set, path, value)?)
    }

    /// Installs an object at an **origin server** (test/control path).
    ///
    /// # Errors
    ///
    /// Fails on protocol errors.
    pub fn origin_put(
        &mut self,
        url: &str,
        version: u32,
        body: impl Into<Bytes>,
    ) -> io::Result<()> {
        write_message(
            &mut self.stream,
            &Message::OriginPut {
                url: url.to_string(),
                version,
                body: body.into(),
            },
        )?;
        match read_message(&mut self.reader)? {
            Message::Ack => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply {other:?}"),
            )),
        }
    }
}

/// Maps a mesh-API reply to `entries` on `Ok` and an error naming the
/// path and status otherwise.
fn meta_ok(path: &str, reply: (MetaStatus, Vec<MetaEntry>)) -> io::Result<Vec<MetaEntry>> {
    match reply {
        (MetaStatus::Ok, entries) => Ok(entries),
        (status, _) => Err(io::Error::other(format!("meta {path}: {status:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{CacheNode, NodeConfig};
    use crate::origin::OriginServer;

    #[test]
    fn connection_reuse_and_push() {
        let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
        let node = CacheNode::spawn(NodeConfig::new("127.0.0.1:0", origin.addr())).expect("node");
        let mut conn = Connection::open(node.addr()).expect("open");

        let (s1, _) = conn.fetch("http://t.test/1").expect("fetch 1");
        let (s2, _) = conn.fetch("http://t.test/1").expect("fetch 2");
        assert_eq!(s1, Source::Origin);
        assert_eq!(s2, Source::Local);

        conn.push("http://t.test/pushed", 4, &b"pushed body"[..])
            .expect("push");
        let (s3, body) = conn.fetch("http://t.test/pushed").expect("fetch pushed");
        assert_eq!(s3, Source::Local, "pushed object must be a local hit");
        assert_eq!(&body[..], b"pushed body");
        assert_eq!(node.stats().pushes_received, 1);
    }

    #[test]
    fn stats_and_trace_scrape_a_live_node() {
        let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
        let node = CacheNode::spawn(NodeConfig::new("127.0.0.1:0", origin.addr())).expect("node");
        let mut conn = Connection::open(node.addr()).expect("open");

        conn.fetch("http://t.test/scrape").expect("fetch");
        let stats = conn.scrape_stats().expect("scrape stats");
        assert!(
            stats
                .iter()
                .any(|e| e.name == "origin_fetches" && e.value == 1),
            "origin fetch not visible in scrape: {stats:?}"
        );
        assert!(
            stats
                .iter()
                .any(|e| e.name == "request_service_micros.count"),
            "service histogram missing from scrape"
        );

        let trace = conn.scrape_trace().expect("scrape trace");
        assert!(trace.iter().any(|e| e.kind == bh_obs::span::RECV));
        assert!(trace.iter().any(|e| e.kind == bh_obs::span::ORIGIN_FETCH));
        assert!(trace.iter().any(|e| e.kind == bh_obs::span::REPLY));
    }

    #[test]
    fn find_nearest_round_trip() {
        let origin = OriginServer::spawn("127.0.0.1:0").expect("origin");
        let node = CacheNode::spawn(NodeConfig::new("127.0.0.1:0", origin.addr())).expect("node");
        let mut conn = Connection::open(node.addr()).expect("open");
        assert_eq!(conn.find_nearest(12345).expect("find"), None);
    }
}
