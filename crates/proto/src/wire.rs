//! Wire format: length-prefixed frames and the 20-byte hint-update record.
//!
//! Frame layout: `u32 length (LE, payload bytes) | u8 message type |
//! payload`. Strings are `u32 length | UTF-8 bytes`; binary bodies are
//! `u32 length | bytes`.
//!
//! The hint-update record is exactly the paper's (§3.2): "each update
//! consumes 20 bytes: a 4-byte action, an 8-byte object identifier (part
//! of the MD5 signature of the object's URL), and an 8-byte machine
//! identifier (an IP address and port number)."

pub use bh_obs::{MetricEntry, TraceEvent};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{self, Read, Write};

/// Maximum accepted frame payload (guards against corrupt length prefixes).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// A machine identifier: IPv4 address and port packed into 8 bytes
/// (4 bytes address, 2 bytes port, 2 bytes zero), as the paper specifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MachineId(pub u64);

impl MachineId {
    /// Packs an IPv4 socket address.
    ///
    /// # Errors
    ///
    /// Returns `None` for IPv6 addresses (the 1998-era record has no room).
    pub fn from_addr(addr: std::net::SocketAddr) -> Option<Self> {
        match addr {
            std::net::SocketAddr::V4(v4) => {
                let ip = u32::from_be_bytes(v4.ip().octets()) as u64;
                Some(MachineId(ip << 32 | (v4.port() as u64) << 16))
            }
            std::net::SocketAddr::V6(_) => None,
        }
    }

    /// Unpacks back into a socket address.
    pub fn to_addr(self) -> std::net::SocketAddr {
        let ip = std::net::Ipv4Addr::from(((self.0 >> 32) as u32).to_be_bytes());
        let port = ((self.0 >> 16) & 0xFFFF) as u16;
        std::net::SocketAddr::V4(std::net::SocketAddrV4::new(ip, port))
    }
}

/// Hint-update action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintAction {
    /// A node now stores a copy ("inform"/advertise).
    Add,
    /// A node no longer stores a copy ("invalidate"/advertise non-presence).
    Remove,
}

/// One 20-byte hint-update record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HintUpdate {
    /// What happened.
    pub action: HintAction,
    /// Low 64 bits of the MD5 of the object's URL.
    pub object: u64,
    /// Who it happened at.
    pub machine: MachineId,
}

/// Size of an encoded [`HintUpdate`].
pub const HINT_UPDATE_BYTES: usize = 20;

impl HintUpdate {
    /// Encodes into the fixed 20-byte layout.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(match self.action {
            HintAction::Add => 1,
            HintAction::Remove => 2,
        });
        buf.put_u64_le(self.object);
        buf.put_u64_le(self.machine.0);
    }

    /// Decodes from the fixed layout.
    ///
    /// # Errors
    ///
    /// Fails if the buffer is short or the action code is unknown.
    pub fn decode(buf: &mut impl Buf) -> io::Result<Self> {
        if buf.remaining() < HINT_UPDATE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "short hint update",
            ));
        }
        let action = match buf.get_u32_le() {
            1 => HintAction::Add,
            2 => HintAction::Remove,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown hint action {other}"),
                ))
            }
        };
        Ok(HintUpdate {
            action,
            object: buf.get_u64_le(),
            machine: MachineId(buf.get_u64_le()),
        })
    }
}

/// Reply status for `Get`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Data follows.
    Ok,
    /// The asked node does not have the object (false-positive hint).
    NotFound,
    /// Server-side error.
    Error,
    /// Admission control turned the request away: the node's worker queue
    /// is past its high-water mark and the client should fetch from the
    /// origin directly instead of waiting in an unbounded queue.
    Redirect,
}

/// Where a `Get` was ultimately served from (diagnostic, carried in the
/// reply so clients and tests can observe the data path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// The contacted node's own cache.
    Local,
    /// A peer cache (direct cache-to-cache transfer).
    Peer(MachineId),
    /// The origin server.
    Origin,
}

/// Operation selector for a [`Message::MetaRequest`] against the mesh
/// meta namespace (`mesh/...`, `meta/...`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaOp {
    /// Read one leaf (`mesh/nodes/self/metrics/local_hits`) or dump a
    /// branch (`Get mesh/nodes/self/metrics` returns every metric with
    /// its value — the scrape path).
    Get,
    /// Enumerate a branch's children, sorted, names only where values
    /// are non-deterministic (so listings are byte-identical across
    /// seeded runs).
    List,
    /// Control-plane write: the request's `value` is the new state
    /// (`Set .../control/drain true`).
    Set,
}

/// Outcome of a [`Message::MetaRequest`], carried in the reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaStatus {
    /// The operation succeeded; `entries` carries the result.
    Ok,
    /// The path does not name a known branch or leaf.
    NotFound,
    /// The path exists but does not support the requested op (e.g. `Set`
    /// on a read-only metric).
    Denied,
    /// The path or value is malformed (bad node id, non-boolean for a
    /// flag, non-numeric for a knob).
    Invalid,
}

/// One `path = value` pair in a [`Message::MetaReply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaEntry {
    /// Namespace path, relative to the serving node's root.
    pub path: String,
    /// Rendered value (empty for pure listings).
    pub value: String,
}

/// Protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Fetch an object through the cache.
    Get {
        /// Full URL (the request always carries it; hint keys may collide).
        url: String,
    },
    /// Peer-to-peer fetch: only serve from the local cache, never forward
    /// (a miss here is a false-positive hint at the requester).
    PeerGet {
        /// Full URL.
        url: String,
    },
    /// Reply to `Get`/`PeerGet`.
    GetReply {
        /// Outcome.
        status: Status,
        /// Object version.
        version: u32,
        /// Where it came from.
        served_by: ServedBy,
        /// The body (empty unless `status == Ok`).
        body: Bytes,
    },
    /// A batch of hint updates ("HTTP POST to route://updates" in the
    /// prototype; a first-class frame here).
    UpdateBatch(Vec<HintUpdate>),
    /// A coalesced multi-record hint flush: like [`Message::UpdateBatch`]
    /// but carrying a leading version byte so the batching format can
    /// evolve without burning a frame type. Version
    /// [`HINT_BATCH_VERSION`] payloads are `u8 version | u64 sender |
    /// u32 count | count × 20-byte records | 16-byte tag`, where `tag`
    /// is the sender's keyed-MD5 authenticator over the batch
    /// ([`hint_batch_tag`]) — receivers verify it before applying and
    /// quarantine peers whose batches keep failing. Receivers keep
    /// decoding `UpdateBatch` forever, so old senders interoperate with
    /// new nodes. Build with [`Message::hint_batch`], which computes the
    /// tag.
    HintBatch {
        /// Who flushed the batch (the authenticator key is per-sender).
        sender: MachineId,
        /// The coalesced updates.
        updates: Vec<HintUpdate>,
        /// Keyed-MD5 authenticator over `(version, sender, updates)`.
        tag: [u8; 16],
    },
    /// Push a copy of an object to the receiving cache (§4).
    Push {
        /// Full URL.
        url: String,
        /// Object version.
        version: u32,
        /// The body.
        body: Bytes,
    },
    /// Ask a node's hint store for the nearest copy ("find nearest").
    FindNearest {
        /// 64-bit object key.
        key: u64,
    },
    /// Reply to `FindNearest`.
    FindNearestReply {
        /// The nearest known location, if any.
        location: Option<MachineId>,
    },
    /// Origin-control: install an object at the origin server (tests drive
    /// content and versions through this).
    OriginPut {
        /// Full URL.
        url: String,
        /// New version.
        version: u32,
        /// New body.
        body: Bytes,
    },
    /// Acknowledgement for `UpdateBatch` / `Push` / `OriginPut`.
    Ack,
    /// Liveness heartbeat: "are you there?". Reply is [`Message::Ack`].
    /// Carries no payload — reachability is the only question.
    Ping,
    /// Anti-entropy pull issued by a warm-restarted node: "re-advertise
    /// what you hold". The receiver replies with a [`Message::HintBatch`]
    /// of `Add` records for every object in its *own* cache, letting the
    /// asker rebuild the hint table it lost in the crash (§3.2 recovery).
    Resync,
    /// Operator scrape: ask a node for its full metrics-registry snapshot.
    /// Reply is [`Message::StatsReply`].
    StatsRequest,
    /// Reply to [`Message::StatsRequest`]: every registered metric as a
    /// name-sorted `(name, value)` list — counters, refreshed pool gauges,
    /// and expanded histogram buckets alike.
    StatsReply(Vec<MetricEntry>),
    /// Operator scrape: ask a node for its retained trace ring. Reply is
    /// [`Message::TraceReply`].
    TraceRequest,
    /// Reply to [`Message::TraceRequest`]: retained trace records, oldest
    /// first. Fixed 26-byte encode per record.
    TraceReply(Vec<TraceEvent>),
    /// Path-addressed read or control write against the node's meta
    /// namespace (the mesh API). Payload leads with
    /// [`META_API_VERSION`] so the namespace can evolve without burning
    /// a frame type; decoders reject any other version. Reply is
    /// [`Message::MetaReply`].
    MetaRequest {
        /// What to do at the path.
        op: MetaOp,
        /// Namespace path (`mesh/nodes/self/metrics/local_hits`).
        path: String,
        /// New state for `Set`; empty for `Get`/`List`.
        value: String,
    },
    /// Reply to [`Message::MetaRequest`]: a status plus zero or more
    /// `path = value` entries (one for `Get`/`Set` echoes, n sorted
    /// entries for `List`, none on error).
    MetaReply {
        /// Outcome.
        status: MetaStatus,
        /// Result rows.
        entries: Vec<MetaEntry>,
    },
}

const T_GET: u8 = 1;
const T_PEER_GET: u8 = 2;
const T_GET_REPLY: u8 = 3;
const T_UPDATE_BATCH: u8 = 4;
const T_PUSH: u8 = 5;
const T_FIND_NEAREST: u8 = 6;
const T_FIND_NEAREST_REPLY: u8 = 7;
const T_ORIGIN_PUT: u8 = 8;
const T_ACK: u8 = 9;
const T_HINT_BATCH: u8 = 10;
const T_PING: u8 = 11;
const T_RESYNC: u8 = 12;
const T_STATS_REQUEST: u8 = 13;
const T_STATS_REPLY: u8 = 14;
const T_TRACE_REQUEST: u8 = 15;
const T_TRACE_REPLY: u8 = 16;
const T_META_REQUEST: u8 = 17;
const T_META_REPLY: u8 = 18;

/// Bytes of one encoded [`TraceEvent`]: `u64 ts | u16 kind | u64 a | u64 b`.
const TRACE_EVENT_BYTES: usize = 26;

/// Minimum bytes of one encoded [`MetricEntry`]: `u32 len | name | u64 value`
/// with an empty name.
const METRIC_ENTRY_MIN_BYTES: usize = 12;

/// Minimum bytes of one encoded [`MetaEntry`]: two length-prefixed strings,
/// both empty (`u32 len | path | u32 len | value`).
const META_ENTRY_MIN_BYTES: usize = 8;

/// Current version byte at the head of [`Message::MetaRequest`] and
/// [`Message::MetaReply`] payloads. Decoders accept exactly this version
/// and reject anything else with `InvalidData`, so the namespace contract
/// can change shape without reusing stale frame semantics.
pub const META_API_VERSION: u8 = 1;

/// Current version byte written at the head of a [`Message::HintBatch`]
/// payload. Decoders accept exactly this version and reject anything newer
/// (or older) with `InvalidData` rather than misparsing it. Version 2
/// added the sender id and the trailing keyed-MD5 authenticator.
pub const HINT_BATCH_VERSION: u8 = 2;

/// Bytes of a [`Message::HintBatch`] authenticator tag (one MD5 digest).
pub const HINT_TAG_BYTES: usize = 16;

/// Derives the per-sender key for [`hint_batch_tag`].
///
/// The derivation is a *public* scheme (MD5 over a domain label and the
/// sender id), which authenticates against corruption and byzantine-buggy
/// peers — the failure modes the chaos harness injects — but not against
/// an adversary who knows the scheme. A hardened deployment would swap
/// this one function for provisioned shared secrets; everything else
/// (tag chaining, verification, quarantine) is key-source agnostic.
pub fn hint_batch_key(sender: MachineId) -> [u8; 16] {
    let mut ctx = bh_md5::Context::new();
    ctx.consume(b"bh-hint-batch-auth-v2");
    ctx.consume(sender.0.to_le_bytes());
    ctx.finalize().0
}

/// The keyed-MD5 authenticator a [`Message::HintBatch`] carries:
/// `MD5(key ‖ version ‖ sender ‖ count ‖ records ‖ key)` with the
/// per-sender [`hint_batch_key`], streamed record by record (no batch
/// copy).
pub fn hint_batch_tag(sender: MachineId, updates: &[HintUpdate]) -> [u8; 16] {
    let key = hint_batch_key(sender);
    let mut ctx = bh_md5::Context::keyed(&key);
    ctx.consume([HINT_BATCH_VERSION]);
    ctx.consume(sender.0.to_le_bytes());
    ctx.consume((updates.len() as u32).to_le_bytes());
    for u in updates {
        let action: u32 = match u.action {
            HintAction::Add => 1,
            HintAction::Remove => 2,
        };
        ctx.consume(action.to_le_bytes());
        ctx.consume(u.object.to_le_bytes());
        ctx.consume(u.machine.0.to_le_bytes());
    }
    ctx.finalize_keyed(&key).0
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> io::Result<String> {
    if buf.remaining() < 4 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "short string length",
        ));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "short string body",
        ));
    }
    // Validate UTF-8 against the shared slice, then make the one copy an
    // owned `String` requires (the legacy path copied twice: once into a
    // `Vec` and once through `String::from_utf8`).
    let bytes = buf.copy_to_bytes(len);
    match std::str::from_utf8(&bytes) {
        Ok(s) => Ok(s.to_string()),
        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e)),
    }
}

fn put_bytes(buf: &mut BytesMut, b: &Bytes) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

fn get_bytes(buf: &mut Bytes) -> io::Result<Bytes> {
    if buf.remaining() < 4 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "short bytes length",
        ));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "short bytes body",
        ));
    }
    Ok(buf.copy_to_bytes(len))
}

impl Message {
    /// Builds an authenticated [`Message::HintBatch`]: computes the
    /// sender's keyed tag over the updates. The only way honest code
    /// should construct the variant.
    pub fn hint_batch(sender: MachineId, updates: Vec<HintUpdate>) -> Message {
        let tag = hint_batch_tag(sender, &updates);
        Message::HintBatch {
            sender,
            updates,
            tag,
        }
    }

    /// Encodes the full frame (`u32 len | u8 ty | payload`) into `out`,
    /// replacing its contents but keeping its allocation.
    ///
    /// This is the hot encode path: callers on the data path hold one
    /// scratch `BytesMut` per connection (or per worker) and reuse it for
    /// every reply, so a warm connection encodes with zero allocations.
    /// The payload is written once, directly after a placeholder header
    /// that is patched in place — no intermediate payload buffer and no
    /// frame-assembly copy. Use [`Message::encoded`] when an owned
    /// [`Bytes`] frame is more convenient than a borrowed slice.
    pub fn encode(&self, out: &mut BytesMut) {
        out.clear();
        // Placeholder header, patched once the payload length is known.
        out.put_u32_le(0);
        out.put_u8(0);
        let ty = match self {
            Message::Get { url } => {
                put_string(out, url);
                T_GET
            }
            Message::PeerGet { url } => {
                put_string(out, url);
                T_PEER_GET
            }
            Message::GetReply {
                status,
                version,
                served_by,
                body,
            } => {
                out.put_u8(match status {
                    Status::Ok => 0,
                    Status::NotFound => 1,
                    Status::Error => 2,
                    Status::Redirect => 3,
                });
                out.put_u32_le(*version);
                match served_by {
                    ServedBy::Local => out.put_u8(0),
                    ServedBy::Peer(m) => {
                        out.put_u8(1);
                        out.put_u64_le(m.0);
                    }
                    ServedBy::Origin => out.put_u8(2),
                }
                put_bytes(out, body);
                T_GET_REPLY
            }
            Message::UpdateBatch(updates) => {
                out.put_u32_le(updates.len() as u32);
                for u in updates {
                    u.encode(out);
                }
                T_UPDATE_BATCH
            }
            Message::HintBatch {
                sender,
                updates,
                tag,
            } => {
                out.put_u8(HINT_BATCH_VERSION);
                out.put_u64_le(sender.0);
                out.put_u32_le(updates.len() as u32);
                for u in updates {
                    u.encode(out);
                }
                out.put_slice(tag);
                T_HINT_BATCH
            }
            Message::Push { url, version, body } => {
                put_string(out, url);
                out.put_u32_le(*version);
                put_bytes(out, body);
                T_PUSH
            }
            Message::FindNearest { key } => {
                out.put_u64_le(*key);
                T_FIND_NEAREST
            }
            Message::FindNearestReply { location } => {
                match location {
                    Some(m) => {
                        out.put_u8(1);
                        out.put_u64_le(m.0);
                    }
                    None => out.put_u8(0),
                }
                T_FIND_NEAREST_REPLY
            }
            Message::OriginPut { url, version, body } => {
                put_string(out, url);
                out.put_u32_le(*version);
                put_bytes(out, body);
                T_ORIGIN_PUT
            }
            Message::Ack => T_ACK,
            Message::Ping => T_PING,
            Message::Resync => T_RESYNC,
            Message::StatsRequest => T_STATS_REQUEST,
            Message::StatsReply(entries) => {
                out.put_u32_le(entries.len() as u32);
                for e in entries {
                    put_string(out, &e.name);
                    out.put_u64_le(e.value);
                }
                T_STATS_REPLY
            }
            Message::TraceRequest => T_TRACE_REQUEST,
            Message::TraceReply(events) => {
                out.put_u32_le(events.len() as u32);
                for ev in events {
                    out.put_u64_le(ev.ts_micros);
                    out.put_u16_le(ev.kind);
                    out.put_u64_le(ev.a);
                    out.put_u64_le(ev.b);
                }
                T_TRACE_REPLY
            }
            Message::MetaRequest { op, path, value } => {
                out.put_u8(META_API_VERSION);
                out.put_u8(match op {
                    MetaOp::Get => 0,
                    MetaOp::List => 1,
                    MetaOp::Set => 2,
                });
                put_string(out, path);
                put_string(out, value);
                T_META_REQUEST
            }
            Message::MetaReply { status, entries } => {
                out.put_u8(META_API_VERSION);
                out.put_u8(match status {
                    MetaStatus::Ok => 0,
                    MetaStatus::NotFound => 1,
                    MetaStatus::Denied => 2,
                    MetaStatus::Invalid => 3,
                });
                out.put_u32_le(entries.len() as u32);
                for e in entries {
                    put_string(out, &e.path);
                    put_string(out, &e.value);
                }
                T_META_REPLY
            }
        };
        let payload_len = (out.len() - 5) as u32;
        out[0..4].copy_from_slice(&payload_len.to_le_bytes());
        out[4] = ty;
    }

    /// Encodes into a freshly allocated, framed [`Bytes`] buffer.
    ///
    /// Convenience wrapper over [`Message::encode`] for cold paths
    /// (tests, one-shot control messages): one allocation, zero copies
    /// (the scratch vector is moved, not duplicated, by `freeze`).
    pub fn encoded(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(64);
        self.encode(&mut out);
        out.freeze()
    }

    /// Decodes one message from `(type, payload)`.
    ///
    /// # Errors
    ///
    /// Fails on truncated payloads or unknown type/status codes.
    pub fn decode(ty: u8, mut payload: Bytes) -> io::Result<Message> {
        let buf = &mut payload;
        let msg = match ty {
            T_GET => Message::Get {
                url: get_string(buf)?,
            },
            T_PEER_GET => Message::PeerGet {
                url: get_string(buf)?,
            },
            T_GET_REPLY => {
                if buf.remaining() < 6 {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "short reply"));
                }
                let status = match buf.get_u8() {
                    0 => Status::Ok,
                    1 => Status::NotFound,
                    2 => Status::Error,
                    3 => Status::Redirect,
                    s => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unknown status {s}"),
                        ))
                    }
                };
                let version = buf.get_u32_le();
                let served_by = match buf.get_u8() {
                    0 => ServedBy::Local,
                    1 => {
                        if buf.remaining() < 8 {
                            return Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "short peer id",
                            ));
                        }
                        ServedBy::Peer(MachineId(buf.get_u64_le()))
                    }
                    2 => ServedBy::Origin,
                    s => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unknown served-by {s}"),
                        ))
                    }
                };
                Message::GetReply {
                    status,
                    version,
                    served_by,
                    body: get_bytes(buf)?,
                }
            }
            T_UPDATE_BATCH => {
                if buf.remaining() < 4 {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "short batch"));
                }
                let n = buf.get_u32_le() as usize;
                if n > (MAX_FRAME as usize) / HINT_UPDATE_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "oversized batch",
                    ));
                }
                let mut updates = Vec::with_capacity(n);
                for _ in 0..n {
                    updates.push(HintUpdate::decode(buf)?);
                }
                Message::UpdateBatch(updates)
            }
            T_HINT_BATCH => {
                if buf.remaining() < 13 + HINT_TAG_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "short hint batch",
                    ));
                }
                let version = buf.get_u8();
                if version != HINT_BATCH_VERSION {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unsupported hint batch version {version}"),
                    ));
                }
                let sender = MachineId(buf.get_u64_le());
                let n = buf.get_u32_le() as usize;
                if n > (MAX_FRAME as usize) / HINT_UPDATE_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "oversized batch",
                    ));
                }
                let mut updates = Vec::with_capacity(n);
                for _ in 0..n {
                    updates.push(HintUpdate::decode(buf)?);
                }
                if buf.remaining() < HINT_TAG_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "short hint batch tag",
                    ));
                }
                let mut tag = [0u8; HINT_TAG_BYTES];
                buf.copy_to_slice(&mut tag);
                Message::HintBatch {
                    sender,
                    updates,
                    tag,
                }
            }
            T_PUSH => {
                let url = get_string(buf)?;
                if buf.remaining() < 4 {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "short push"));
                }
                let version = buf.get_u32_le();
                Message::Push {
                    url,
                    version,
                    body: get_bytes(buf)?,
                }
            }
            T_FIND_NEAREST => {
                if buf.remaining() < 8 {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "short find"));
                }
                Message::FindNearest {
                    key: buf.get_u64_le(),
                }
            }
            T_FIND_NEAREST_REPLY => {
                if buf.remaining() < 1 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "short find reply",
                    ));
                }
                let location = match buf.get_u8() {
                    0 => None,
                    1 => {
                        if buf.remaining() < 8 {
                            return Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "short location",
                            ));
                        }
                        Some(MachineId(buf.get_u64_le()))
                    }
                    s => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unknown option tag {s}"),
                        ))
                    }
                };
                Message::FindNearestReply { location }
            }
            T_ORIGIN_PUT => {
                let url = get_string(buf)?;
                if buf.remaining() < 4 {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "short put"));
                }
                let version = buf.get_u32_le();
                Message::OriginPut {
                    url,
                    version,
                    body: get_bytes(buf)?,
                }
            }
            T_ACK => Message::Ack,
            T_PING => Message::Ping,
            T_RESYNC => Message::Resync,
            T_STATS_REQUEST => Message::StatsRequest,
            T_STATS_REPLY => {
                if buf.remaining() < 4 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "short stats reply",
                    ));
                }
                let n = buf.get_u32_le() as usize;
                if n > (MAX_FRAME as usize) / METRIC_ENTRY_MIN_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "oversized stats reply",
                    ));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = get_string(buf)?;
                    if buf.remaining() < 8 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "short metric value",
                        ));
                    }
                    entries.push(MetricEntry {
                        name,
                        value: buf.get_u64_le(),
                    });
                }
                Message::StatsReply(entries)
            }
            T_TRACE_REQUEST => Message::TraceRequest,
            T_TRACE_REPLY => {
                if buf.remaining() < 4 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "short trace reply",
                    ));
                }
                let n = buf.get_u32_le() as usize;
                if n > (MAX_FRAME as usize) / TRACE_EVENT_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "oversized trace reply",
                    ));
                }
                if buf.remaining() < n * TRACE_EVENT_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "short trace records",
                    ));
                }
                let mut events = Vec::with_capacity(n);
                for _ in 0..n {
                    events.push(TraceEvent {
                        ts_micros: buf.get_u64_le(),
                        kind: buf.get_u16_le(),
                        a: buf.get_u64_le(),
                        b: buf.get_u64_le(),
                    });
                }
                Message::TraceReply(events)
            }
            T_META_REQUEST => {
                if buf.remaining() < 2 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "short meta request",
                    ));
                }
                let version = buf.get_u8();
                if version != META_API_VERSION {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unsupported meta api version {version}"),
                    ));
                }
                let op = match buf.get_u8() {
                    0 => MetaOp::Get,
                    1 => MetaOp::List,
                    2 => MetaOp::Set,
                    s => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unknown meta op {s}"),
                        ))
                    }
                };
                let path = get_string(buf)?;
                let value = get_string(buf)?;
                Message::MetaRequest { op, path, value }
            }
            T_META_REPLY => {
                if buf.remaining() < 6 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "short meta reply",
                    ));
                }
                let version = buf.get_u8();
                if version != META_API_VERSION {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unsupported meta api version {version}"),
                    ));
                }
                let status = match buf.get_u8() {
                    0 => MetaStatus::Ok,
                    1 => MetaStatus::NotFound,
                    2 => MetaStatus::Denied,
                    3 => MetaStatus::Invalid,
                    s => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unknown meta status {s}"),
                        ))
                    }
                };
                let n = buf.get_u32_le() as usize;
                if n > (MAX_FRAME as usize) / META_ENTRY_MIN_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "oversized meta reply",
                    ));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let path = get_string(buf)?;
                    let value = get_string(buf)?;
                    entries.push(MetaEntry { path, value });
                }
                Message::MetaReply { status, entries }
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown message type {other}"),
                ))
            }
        };
        Ok(msg)
    }
}

/// The pre-zero-copy decoder, retained verbatim as a differential-testing
/// witness: it copies every string and body out of the payload the way the
/// original decode path did, so the wire proptests can assert the zero-copy
/// [`Message::decode`] produces identical values (and identical error
/// outcomes) over the malformed-frame corpus. Not on any request path.
pub fn decode_message_legacy(ty: u8, payload: &[u8]) -> io::Result<Message> {
    fn legacy_string(buf: &mut &[u8]) -> io::Result<String> {
        if buf.remaining() < 4 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "short string length",
            ));
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "short string body",
            ));
        }
        let bytes = buf.copy_to_bytes(len);
        // bh-lint: allow(no-hot-alloc, reason = "legacy copying decoder kept only as a differential-test witness")
        String::from_utf8(bytes.to_vec()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
    fn legacy_bytes(buf: &mut &[u8]) -> io::Result<Bytes> {
        if buf.remaining() < 4 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "short bytes length",
            ));
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "short bytes body",
            ));
        }
        Ok(buf.copy_to_bytes(len))
    }
    let buf = &mut &payload[..];
    let msg = match ty {
        T_GET => Message::Get {
            url: legacy_string(buf)?,
        },
        T_PEER_GET => Message::PeerGet {
            url: legacy_string(buf)?,
        },
        T_GET_REPLY => {
            if buf.remaining() < 6 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "short reply"));
            }
            let status = match buf.get_u8() {
                0 => Status::Ok,
                1 => Status::NotFound,
                2 => Status::Error,
                3 => Status::Redirect,
                s => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown status {s}"),
                    ))
                }
            };
            let version = buf.get_u32_le();
            let served_by = match buf.get_u8() {
                0 => ServedBy::Local,
                1 => {
                    if buf.remaining() < 8 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "short peer id",
                        ));
                    }
                    ServedBy::Peer(MachineId(buf.get_u64_le()))
                }
                2 => ServedBy::Origin,
                s => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown served-by {s}"),
                    ))
                }
            };
            Message::GetReply {
                status,
                version,
                served_by,
                body: legacy_bytes(buf)?,
            }
        }
        T_UPDATE_BATCH => {
            if buf.remaining() < 4 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "short batch"));
            }
            let n = buf.get_u32_le() as usize;
            if n > (MAX_FRAME as usize) / HINT_UPDATE_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "oversized batch",
                ));
            }
            let mut updates = Vec::with_capacity(n);
            for _ in 0..n {
                updates.push(HintUpdate::decode(buf)?);
            }
            Message::UpdateBatch(updates)
        }
        T_HINT_BATCH => {
            if buf.remaining() < 13 + HINT_TAG_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "short hint batch",
                ));
            }
            let version = buf.get_u8();
            if version != HINT_BATCH_VERSION {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unsupported hint batch version {version}"),
                ));
            }
            let sender = MachineId(buf.get_u64_le());
            let n = buf.get_u32_le() as usize;
            if n > (MAX_FRAME as usize) / HINT_UPDATE_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "oversized batch",
                ));
            }
            let mut updates = Vec::with_capacity(n);
            for _ in 0..n {
                updates.push(HintUpdate::decode(buf)?);
            }
            if buf.remaining() < HINT_TAG_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "short hint batch tag",
                ));
            }
            let mut tag = [0u8; HINT_TAG_BYTES];
            buf.copy_to_slice(&mut tag);
            Message::HintBatch {
                sender,
                updates,
                tag,
            }
        }
        T_PUSH => {
            let url = legacy_string(buf)?;
            if buf.remaining() < 4 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "short push"));
            }
            let version = buf.get_u32_le();
            Message::Push {
                url,
                version,
                body: legacy_bytes(buf)?,
            }
        }
        T_FIND_NEAREST => {
            if buf.remaining() < 8 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "short find"));
            }
            Message::FindNearest {
                key: buf.get_u64_le(),
            }
        }
        T_FIND_NEAREST_REPLY => {
            if buf.remaining() < 1 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "short find reply",
                ));
            }
            let location = match buf.get_u8() {
                0 => None,
                1 => {
                    if buf.remaining() < 8 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "short location",
                        ));
                    }
                    Some(MachineId(buf.get_u64_le()))
                }
                s => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown option tag {s}"),
                    ))
                }
            };
            Message::FindNearestReply { location }
        }
        T_ORIGIN_PUT => {
            let url = legacy_string(buf)?;
            if buf.remaining() < 4 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "short put"));
            }
            let version = buf.get_u32_le();
            Message::OriginPut {
                url,
                version,
                body: legacy_bytes(buf)?,
            }
        }
        T_ACK => Message::Ack,
        T_PING => Message::Ping,
        T_RESYNC => Message::Resync,
        T_STATS_REQUEST => Message::StatsRequest,
        T_STATS_REPLY => {
            if buf.remaining() < 4 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "short stats reply",
                ));
            }
            let n = buf.get_u32_le() as usize;
            if n > (MAX_FRAME as usize) / METRIC_ENTRY_MIN_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "oversized stats reply",
                ));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let name = legacy_string(buf)?;
                if buf.remaining() < 8 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "short metric value",
                    ));
                }
                entries.push(MetricEntry {
                    name,
                    value: buf.get_u64_le(),
                });
            }
            Message::StatsReply(entries)
        }
        T_TRACE_REQUEST => Message::TraceRequest,
        T_TRACE_REPLY => {
            if buf.remaining() < 4 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "short trace reply",
                ));
            }
            let n = buf.get_u32_le() as usize;
            if n > (MAX_FRAME as usize) / TRACE_EVENT_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "oversized trace reply",
                ));
            }
            if buf.remaining() < n * TRACE_EVENT_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "short trace records",
                ));
            }
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                events.push(TraceEvent {
                    ts_micros: buf.get_u64_le(),
                    kind: buf.get_u16_le(),
                    a: buf.get_u64_le(),
                    b: buf.get_u64_le(),
                });
            }
            Message::TraceReply(events)
        }
        T_META_REQUEST => {
            if buf.remaining() < 2 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "short meta request",
                ));
            }
            let version = buf.get_u8();
            if version != META_API_VERSION {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unsupported meta api version {version}"),
                ));
            }
            let op = match buf.get_u8() {
                0 => MetaOp::Get,
                1 => MetaOp::List,
                2 => MetaOp::Set,
                s => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown meta op {s}"),
                    ))
                }
            };
            let path = legacy_string(buf)?;
            let value = legacy_string(buf)?;
            Message::MetaRequest { op, path, value }
        }
        T_META_REPLY => {
            if buf.remaining() < 6 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "short meta reply",
                ));
            }
            let version = buf.get_u8();
            if version != META_API_VERSION {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unsupported meta api version {version}"),
                ));
            }
            let status = match buf.get_u8() {
                0 => MetaStatus::Ok,
                1 => MetaStatus::NotFound,
                2 => MetaStatus::Denied,
                3 => MetaStatus::Invalid,
                s => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown meta status {s}"),
                    ))
                }
            };
            let n = buf.get_u32_le() as usize;
            if n > (MAX_FRAME as usize) / META_ENTRY_MIN_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "oversized meta reply",
                ));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let path = legacy_string(buf)?;
                let value = legacy_string(buf)?;
                entries.push(MetaEntry { path, value });
            }
            Message::MetaReply { status, entries }
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown message type {other}"),
            ))
        }
    };
    Ok(msg)
}

/// Writes one framed message to `w`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    w.write_all(&msg.encoded())?;
    w.flush()
}

/// Coalesces a pending update list into the minimal equivalent batch:
/// for each `(object, machine)` pair only the *last* action survives
/// (last-writer-wins), positioned where the pair first appeared so the
/// output order stays deterministic. An Add followed by a Remove for the
/// same copy still sends the Remove — receivers use it to retire stale
/// hints — but the obsolete Add is dropped from the wire.
pub fn coalesce(updates: Vec<HintUpdate>) -> Vec<HintUpdate> {
    use std::collections::HashMap;
    let mut index: HashMap<(u64, u64), usize> = HashMap::with_capacity(updates.len());
    let mut out: Vec<HintUpdate> = Vec::with_capacity(updates.len());
    for u in updates {
        match index.entry((u.object, u.machine.0)) {
            std::collections::hash_map::Entry::Occupied(slot) => out[*slot.get()] = u,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(out.len());
                out.push(u);
            }
        }
    }
    out
}

/// Incremental frame parser for non-blocking sockets.
///
/// Bytes arrive in arbitrary chunks via [`FrameAssembler::extend`];
/// [`FrameAssembler::next_message`] yields complete messages as they become
/// available. The length prefix is validated against [`MAX_FRAME`] as soon
/// as the 5-byte header is buffered, so a corrupt prefix can never cause an
/// over-allocation or an over-read.
///
/// ## Buffer lifecycle (zero-copy)
///
/// Incoming bytes accumulate in a plain `staging` vector (one memcpy off
/// the socket buffer — unavoidable, the kernel hands us borrowed slices).
/// Once at least one *complete* frame is staged, the whole staging vector
/// is frozen into a refcounted [`Bytes`] `window` **without copying** (the
/// vector moves behind an `Arc`), and every complete frame in the window
/// is yielded as a refcounted sub-slice: payloads, and the bodies
/// [`Message::decode`] slices out of them, share the window's allocation
/// until the last reference drops. There is no per-frame payload copy and
/// no `drain`-style memmove of the remaining buffer. A partial frame left
/// at the window's tail is folded back into staging on the next `extend`
/// (one copy of at most that fragment); incomplete frames are never
/// frozen, so feeding a large frame chunk-by-chunk stays linear.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    /// Unfrozen tail of the stream: bytes still being accumulated.
    staging: Vec<u8>,
    /// Frozen, unparsed front of the stream. Invariant: outside of
    /// `extend`, at most one of `staging`/`window` is non-empty, and the
    /// window only ever holds bytes that were part of a freeze containing
    /// at least one complete frame.
    window: Bytes,
}

impl FrameAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Appends raw bytes read off the socket.
    pub fn extend(&mut self, data: &[u8]) {
        if !self.window.is_empty() {
            // A parse pass left a partial frame in the frozen window; fold
            // it back in front of the new bytes. The fragment is smaller
            // than one frame's worth of the last read, so this stays
            // cheaper than the per-frame drain it replaces.
            let mut v = Vec::with_capacity(self.window.len() + self.staging.len() + data.len());
            v.extend_from_slice(&self.window);
            v.extend_from_slice(&self.staging);
            self.window = Bytes::new();
            self.staging = v;
        }
        self.staging.extend_from_slice(data);
    }

    /// Number of bytes buffered but not yet consumed as messages.
    pub fn buffered(&self) -> usize {
        self.window.len() + self.staging.len()
    }

    /// Parses `buf[..5]` as a frame header, validating the length prefix.
    fn header(buf: &[u8]) -> io::Result<usize> {
        let mut len = [0u8; 4];
        len.copy_from_slice(&buf[..4]);
        let len = u32::from_le_bytes(len);
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame too large: {len}"),
            ));
        }
        Ok(5 + len as usize)
    }

    /// Pops the next complete message, `Ok(None)` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// Fails on an oversized length prefix or a malformed payload; the
    /// connection should be dropped, as the stream can no longer be framed.
    pub fn next_message(&mut self) -> io::Result<Option<Message>> {
        if self.window.is_empty() {
            // Freeze staging only once it holds a complete frame: freezing
            // partial data would re-copy it on every subsequent extend.
            if self.staging.len() < 5 {
                return Ok(None);
            }
            let total = Self::header(&self.staging)?;
            if self.staging.len() < total {
                return Ok(None);
            }
            self.window = Bytes::from(std::mem::take(&mut self.staging));
        }
        if self.window.len() < 5 {
            return Ok(None);
        }
        let total = Self::header(&self.window)?;
        if self.window.len() < total {
            return Ok(None);
        }
        let frame = self.window.copy_to_bytes(total); // refcounted sub-slice
        let ty = frame[4];
        let payload = frame.slice(5..total);
        Message::decode(ty, payload).map(Some)
    }
}

/// Reads one framed message from `r`.
///
/// # Errors
///
/// Fails on I/O errors, oversized frames, or malformed payloads.
pub fn read_message<R: Read>(r: &mut R) -> io::Result<Message> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame too large: {len}"),
        ));
    }
    let ty = header[4];
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Message::decode(ty, Bytes::from(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) -> Message {
        let framed = msg.encoded();
        let mut cursor = std::io::Cursor::new(framed.to_vec());
        read_message(&mut cursor).expect("decode")
    }

    #[test]
    fn hint_update_is_twenty_bytes() {
        let mut buf = BytesMut::new();
        HintUpdate {
            action: HintAction::Add,
            object: 0xDEADBEEF,
            machine: MachineId(42),
        }
        .encode(&mut buf);
        assert_eq!(buf.len(), HINT_UPDATE_BYTES);
    }

    #[test]
    fn machine_id_round_trips_socket_addrs() {
        let addr: std::net::SocketAddr = "192.168.1.10:3128".parse().expect("addr");
        let id = MachineId::from_addr(addr).expect("v4");
        assert_eq!(id.to_addr(), addr);
        let v6: std::net::SocketAddr = "[::1]:80".parse().expect("addr");
        assert_eq!(MachineId::from_addr(v6), None);
    }

    #[test]
    fn all_messages_round_trip() {
        let messages = vec![
            Message::Get {
                url: "http://x.test/a".into(),
            },
            Message::PeerGet {
                url: "http://x.test/ü".into(),
            },
            Message::GetReply {
                status: Status::Ok,
                version: 7,
                served_by: ServedBy::Peer(MachineId(99)),
                body: Bytes::from_static(b"hello"),
            },
            Message::GetReply {
                status: Status::NotFound,
                version: 0,
                served_by: ServedBy::Local,
                body: Bytes::new(),
            },
            Message::UpdateBatch(vec![
                HintUpdate {
                    action: HintAction::Add,
                    object: 1,
                    machine: MachineId(2),
                },
                HintUpdate {
                    action: HintAction::Remove,
                    object: 3,
                    machine: MachineId(4),
                },
            ]),
            Message::UpdateBatch(vec![]),
            Message::hint_batch(
                MachineId(11),
                vec![
                    HintUpdate {
                        action: HintAction::Add,
                        object: 9,
                        machine: MachineId(8),
                    },
                    HintUpdate {
                        action: HintAction::Remove,
                        object: 7,
                        machine: MachineId(6),
                    },
                ],
            ),
            Message::hint_batch(MachineId(12), vec![]),
            Message::Push {
                url: "http://x.test/p".into(),
                version: 3,
                body: Bytes::from_static(b"abc"),
            },
            Message::FindNearest { key: 0xABCD },
            Message::FindNearestReply {
                location: Some(MachineId(5)),
            },
            Message::FindNearestReply { location: None },
            Message::OriginPut {
                url: "http://x.test/o".into(),
                version: 1,
                body: Bytes::from_static(b"v1"),
            },
            Message::Ack,
            Message::Ping,
            Message::Resync,
            Message::MetaRequest {
                op: MetaOp::Get,
                path: "mesh/nodes/self/metrics/local_hits".into(),
                value: String::new(),
            },
            Message::MetaRequest {
                op: MetaOp::List,
                path: "meta/mesh/nodes".into(),
                value: String::new(),
            },
            Message::MetaRequest {
                op: MetaOp::Set,
                path: "mesh/nodes/self/control/drain".into(),
                value: "true".into(),
            },
            Message::MetaReply {
                status: MetaStatus::Ok,
                entries: vec![
                    MetaEntry {
                        path: "mesh/nodes/self/metrics/local_hits".into(),
                        value: "7".into(),
                    },
                    MetaEntry {
                        path: "mesh/nodes/self/metrics/peer_hits".into(),
                        value: "ü".into(),
                    },
                ],
            },
            Message::MetaReply {
                status: MetaStatus::NotFound,
                entries: vec![],
            },
        ];
        for msg in messages {
            assert_eq!(round_trip(msg.clone()), msg);
        }
    }

    #[test]
    fn meta_frames_are_versioned() {
        // A future version byte must be rejected, not misparsed — in both
        // directions of the exchange.
        let mut payload = BytesMut::new();
        payload.put_u8(META_API_VERSION + 1);
        payload.put_u8(0); // op: Get
        payload.put_u32_le(0); // empty path
        payload.put_u32_le(0); // empty value
        let err = Message::decode(T_META_REQUEST, payload.freeze()).expect_err("future version");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let mut payload = BytesMut::new();
        payload.put_u8(META_API_VERSION + 1);
        payload.put_u8(0); // status: Ok
        payload.put_u32_le(0); // no entries
        let err = Message::decode(T_META_REPLY, payload.freeze()).expect_err("future version");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // The current version leads both payloads.
        let req = Message::MetaRequest {
            op: MetaOp::Get,
            path: "meta".into(),
            value: String::new(),
        }
        .encoded();
        assert_eq!(req[5], META_API_VERSION);
        let reply = Message::MetaReply {
            status: MetaStatus::Ok,
            entries: vec![],
        }
        .encoded();
        assert_eq!(reply[5], META_API_VERSION);
    }

    #[test]
    fn oversized_meta_reply_count_rejected() {
        // A corrupt count must fail fast on the length arithmetic, not
        // attempt a giant allocation.
        let mut payload = BytesMut::new();
        payload.put_u8(META_API_VERSION);
        payload.put_u8(0); // status: Ok
        payload.put_u32_le(u32::MAX);
        let err = Message::decode(T_META_REPLY, payload.freeze()).expect_err("oversized");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn ping_and_resync_are_payloadless() {
        // Heartbeats ride the hot path; they must stay at the 5-byte frame
        // minimum.
        assert_eq!(Message::Ping.encoded().len(), 5);
        assert_eq!(Message::Resync.encoded().len(), 5);
    }

    #[test]
    fn update_batch_frame_size_matches_paper_arithmetic() {
        // A batch of N updates costs 5 (frame) + 4 (count) + 20N bytes —
        // the paper's "20 bytes per update".
        let n = 100;
        let batch = Message::UpdateBatch(
            (0..n)
                .map(|i| HintUpdate {
                    action: HintAction::Add,
                    object: i,
                    machine: MachineId(i),
                })
                .collect(),
        );
        assert_eq!(batch.encoded().len(), 5 + 4 + 20 * n as usize);
    }

    #[test]
    fn hint_batch_is_versioned_and_update_batch_still_decodes() {
        let updates = vec![HintUpdate {
            action: HintAction::Add,
            object: 1,
            machine: MachineId(2),
        }];
        // 5 (frame) + 1 (version) + 8 (sender) + 4 (count) + 20N +
        // 16 (tag).
        let batch = Message::hint_batch(MachineId(3), updates.clone());
        let encoded = batch.encoded();
        assert_eq!(encoded.len(), 5 + 1 + 8 + 4 + 20 + 16);
        assert_eq!(encoded[5], HINT_BATCH_VERSION);

        // A future version byte must be rejected, not misparsed.
        let mut payload = BytesMut::new();
        payload.put_u8(HINT_BATCH_VERSION + 1);
        payload.put_u64_le(3);
        payload.put_u32_le(0);
        payload.put_slice(&[0u8; HINT_TAG_BYTES]);
        let err = Message::decode(T_HINT_BATCH, payload.freeze()).expect_err("future version");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // The legacy frame keeps working alongside the new one.
        assert_eq!(
            round_trip(Message::UpdateBatch(updates.clone())),
            Message::UpdateBatch(updates)
        );
    }

    #[test]
    fn hint_batch_tags_bind_sender_and_contents() {
        let updates = vec![HintUpdate {
            action: HintAction::Add,
            object: 5,
            machine: MachineId(6),
        }];
        let tag = hint_batch_tag(MachineId(1), &updates);
        // Same inputs, same tag (stateless authenticator).
        assert_eq!(tag, hint_batch_tag(MachineId(1), &updates));
        // A different sender keys differently.
        assert_ne!(tag, hint_batch_tag(MachineId(2), &updates));
        // Any record mutation changes the tag.
        let mut flipped = updates.clone();
        flipped[0].object ^= 1;
        assert_ne!(tag, hint_batch_tag(MachineId(1), &flipped));
        let mut removed = updates.clone();
        removed[0].action = HintAction::Remove;
        assert_ne!(tag, hint_batch_tag(MachineId(1), &removed));
        // The constructor embeds exactly this tag.
        match Message::hint_batch(MachineId(1), updates.clone()) {
            Message::HintBatch {
                sender,
                updates: got,
                tag: got_tag,
            } => {
                assert_eq!(sender, MachineId(1));
                assert_eq!(got, updates);
                assert_eq!(got_tag, tag);
            }
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn coalesce_keeps_last_action_per_copy() {
        let m = MachineId(1);
        let updates = vec![
            HintUpdate {
                action: HintAction::Add,
                object: 1,
                machine: m,
            },
            HintUpdate {
                action: HintAction::Add,
                object: 2,
                machine: m,
            },
            HintUpdate {
                action: HintAction::Remove,
                object: 1,
                machine: m,
            },
            HintUpdate {
                action: HintAction::Add,
                object: 2,
                machine: MachineId(3),
            },
            HintUpdate {
                action: HintAction::Add,
                object: 2,
                machine: m,
            },
        ];
        let out = coalesce(updates);
        assert_eq!(
            out,
            vec![
                HintUpdate {
                    action: HintAction::Remove,
                    object: 1,
                    machine: m
                },
                HintUpdate {
                    action: HintAction::Add,
                    object: 2,
                    machine: m
                },
                HintUpdate {
                    action: HintAction::Add,
                    object: 2,
                    machine: MachineId(3)
                },
            ]
        );
    }

    #[test]
    fn assembler_yields_messages_across_arbitrary_chunk_boundaries() {
        let messages = vec![
            Message::Get {
                url: "http://x.test/a".into(),
            },
            Message::hint_batch(
                MachineId(7),
                vec![HintUpdate {
                    action: HintAction::Add,
                    object: 5,
                    machine: MachineId(6),
                }],
            ),
            Message::Ack,
        ];
        let mut stream = Vec::new();
        for m in &messages {
            stream.extend_from_slice(&m.encoded());
        }
        // Feed one byte at a time; every complete frame must pop out exactly
        // once, in order.
        let mut assembler = FrameAssembler::new();
        let mut got = Vec::new();
        for byte in stream {
            assembler.extend(&[byte]);
            while let Some(msg) = assembler.next_message().expect("clean stream") {
                got.push(msg);
            }
        }
        assert_eq!(got, messages);
        assert_eq!(assembler.buffered(), 0);
    }

    #[test]
    fn assembler_rejects_oversized_and_malformed_frames() {
        let mut assembler = FrameAssembler::new();
        let mut frame = BytesMut::new();
        frame.put_u32_le(MAX_FRAME + 1);
        frame.put_u8(T_ACK);
        assembler.extend(&frame);
        assert!(assembler.next_message().is_err());

        let mut assembler = FrameAssembler::new();
        let mut frame = BytesMut::new();
        frame.put_u32_le(0);
        frame.put_u8(200); // unknown type
        assembler.extend(&frame);
        assert!(assembler.next_message().is_err());

        // A partial header is just "need more bytes".
        let mut assembler = FrameAssembler::new();
        assembler.extend(&[1, 0, 0]);
        assert!(assembler.next_message().expect("partial header").is_none());
    }

    #[test]
    fn rejects_garbage() {
        // Unknown type.
        let mut frame = BytesMut::new();
        frame.put_u32_le(0);
        frame.put_u8(200);
        let mut cursor = std::io::Cursor::new(frame.to_vec());
        assert!(read_message(&mut cursor).is_err());

        // Oversized length prefix.
        let mut frame = BytesMut::new();
        frame.put_u32_le(MAX_FRAME + 1);
        frame.put_u8(T_ACK);
        let mut cursor = std::io::Cursor::new(frame.to_vec());
        assert!(read_message(&mut cursor).is_err());

        // Truncated string.
        let mut payload = BytesMut::new();
        payload.put_u32_le(100); // claims 100 bytes, has none
        assert!(Message::decode(T_GET, payload.freeze()).is_err());
    }

    #[test]
    fn truncated_stream_is_clean_eof() {
        let framed = Message::Ack.encoded();
        let mut cursor = std::io::Cursor::new(framed[..3].to_vec());
        let err = read_message(&mut cursor).expect_err("short read");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
