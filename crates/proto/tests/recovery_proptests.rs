//! Property tests for crash-recovery convergence: a node that
//! crash-stops, loses its entire hint table, restarts on the same port,
//! and runs one anti-entropy resync must end up with exactly the hint
//! table of a peer that never crashed — for any assignment of objects to
//! the surviving nodes.
//!
//! Topology per case: a 4-node full mesh where objects are cached only on
//! nodes 0 and 2, node 1 is the crash victim, and node 3 is the
//! never-crashed witness. Both 1 and 3 learn every object purely from
//! hint-update batches, so after 1's crash/restart/resync the two tables
//! must agree record for record.

use bh_proto::chaos::ChaosMesh;
use bh_proto::node::NodeConfig;
use proptest::prelude::*;
use std::collections::HashSet;
use std::time::Duration;

/// Slow background timers: every flush/heartbeat in these tests is driven
/// explicitly so case outcomes don't race the clock.
fn tuned(c: NodeConfig) -> NodeConfig {
    let mut c = c
        .with_flush_max(Duration::from_secs(3600))
        .with_heartbeat_interval(Duration::from_secs(3600))
        .with_shutdown_deadline(Duration::from_secs(2));
    c.io_timeout = Duration::from_millis(500);
    c
}

/// An object population: each entry picks an owner (node 0 or node 2) and
/// an object id. Duplicate ids are dropped so every object lives on
/// exactly one node and hint tables have a unique fixed point.
fn arb_population() -> impl Strategy<Value = Vec<(usize, u32)>> {
    proptest::collection::vec((0usize..=1, 0u32..500), 1..10).prop_map(|raw| {
        let mut seen = HashSet::new();
        raw.into_iter()
            .filter(|(_, id)| seen.insert(*id))
            .map(|(owner, id)| (owner * 2, id))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Crash → restart → resync converges on the witness's hint table.
    #[test]
    fn crash_restart_resync_converges_to_witness(population in arb_population()) {
        let mut mesh = ChaosMesh::spawn(4, tuned).expect("spawn mesh");
        for &(owner, id) in &population {
            let addr = mesh.node(owner).expect("owner alive").addr();
            bh_proto::fetch(addr, &format!("http://recovery.test/{id}"))
                .expect("seed object at its owner");
        }
        // One synchronous flush per node: receivers apply the batch before
        // acking, so hints have landed everywhere when this returns.
        mesh.flush_all();

        let witness = mesh.node(3).expect("witness alive").hint_entries();
        prop_assert_eq!(witness.len(), population.len());
        // Pre-crash: victim and witness agree.
        prop_assert_eq!(&mesh.node(1).expect("victim alive").hint_entries(), &witness);

        mesh.crash(1);
        let rebuilt = mesh.restart(1).expect("restart victim on its old port");
        // Resync re-learns every object and converges on the witness.
        prop_assert_eq!(rebuilt, population.len());
        prop_assert_eq!(
            &mesh.node(1).expect("victim restarted").hint_entries(),
            &witness
        );
        mesh.shutdown();
    }
}
