//! Property tests for the wire format: every frame type round-trips
//! through encode → reassembly → decode, and malformed input (truncated,
//! corrupted, oversized) is rejected with an error — never a panic.

use bh_proto::wire::{
    decode_message_legacy, read_message, write_message, FrameAssembler, HintAction, HintUpdate,
    MachineId, Message, MetaEntry, MetaOp, MetaStatus, MetricEntry, ServedBy, Status, TraceEvent,
    MAX_FRAME,
};
use bytes::Bytes;
use proptest::prelude::*;
use std::io::Cursor;

fn arb_url() -> BoxedStrategy<String> {
    // Mostly URL-ish ASCII, with arbitrary unicode mixed in: the format
    // carries any UTF-8 string.
    prop_oneof![
        (any::<u64>(), 0usize..40).prop_map(|(key, extra)| {
            let mut url = format!("http://host-{}.test/obj/{key:x}", key % 17);
            for i in 0..extra {
                url.push(char::from(b'a' + (i % 26) as u8));
            }
            url
        }),
        proptest::collection::vec(any::<char>(), 0..24)
            .prop_map(|chars| chars.into_iter().collect::<String>()),
    ]
    .boxed()
}

fn arb_body() -> BoxedStrategy<Bytes> {
    proptest::collection::vec(any::<u8>(), 0..2048)
        .prop_map(Bytes::from)
        .boxed()
}

fn arb_hint_update() -> BoxedStrategy<HintUpdate> {
    (any::<bool>(), any::<u64>(), any::<u64>())
        .prop_map(|(add, object, machine)| HintUpdate {
            action: if add {
                HintAction::Add
            } else {
                HintAction::Remove
            },
            object,
            machine: MachineId(machine),
        })
        .boxed()
}

fn arb_status() -> BoxedStrategy<Status> {
    prop_oneof![
        Just(Status::Ok),
        Just(Status::NotFound),
        Just(Status::Error),
        Just(Status::Redirect),
    ]
    .boxed()
}

fn arb_served_by() -> BoxedStrategy<ServedBy> {
    prop_oneof![
        Just(ServedBy::Local),
        Just(ServedBy::Origin),
        any::<u64>().prop_map(|m| ServedBy::Peer(MachineId(m))),
    ]
    .boxed()
}

fn arb_metric_entry() -> BoxedStrategy<MetricEntry> {
    (
        proptest::collection::vec(any::<char>(), 0..16),
        any::<u64>(),
    )
        .prop_map(|(chars, value)| MetricEntry {
            name: chars.into_iter().collect(),
            value,
        })
        .boxed()
}

fn arb_trace_event() -> BoxedStrategy<TraceEvent> {
    (any::<u64>(), any::<u16>(), any::<u64>(), any::<u64>())
        .prop_map(|(ts_micros, kind, a, b)| TraceEvent {
            ts_micros,
            kind,
            a,
            b,
        })
        .boxed()
}

fn arb_meta_op() -> BoxedStrategy<MetaOp> {
    prop_oneof![Just(MetaOp::Get), Just(MetaOp::List), Just(MetaOp::Set),].boxed()
}

fn arb_meta_status() -> BoxedStrategy<MetaStatus> {
    prop_oneof![
        Just(MetaStatus::Ok),
        Just(MetaStatus::NotFound),
        Just(MetaStatus::Denied),
        Just(MetaStatus::Invalid),
    ]
    .boxed()
}

fn arb_meta_path() -> BoxedStrategy<String> {
    // Mostly namespace-shaped paths, with arbitrary unicode mixed in: the
    // codec carries any UTF-8 string; path validation is the resolver's job.
    prop_oneof![
        (any::<u64>(), 0usize..4).prop_map(|(id, depth)| {
            let mut path = format!("mesh/nodes/{}", id % 9);
            for seg in ["metrics", "hints", "pool", "control"].iter().take(depth) {
                path.push('/');
                path.push_str(seg);
            }
            path
        }),
        proptest::collection::vec(any::<char>(), 0..24)
            .prop_map(|chars| chars.into_iter().collect::<String>()),
    ]
    .boxed()
}

fn arb_meta_entry() -> BoxedStrategy<MetaEntry> {
    (
        arb_meta_path(),
        proptest::collection::vec(any::<char>(), 0..16),
    )
        .prop_map(|(path, chars)| MetaEntry {
            path,
            value: chars.into_iter().collect(),
        })
        .boxed()
}

/// Every frame type in the protocol, including `HintBatch`.
fn arb_message() -> BoxedStrategy<Message> {
    prop_oneof![
        arb_url().prop_map(|url| Message::Get { url }),
        arb_url().prop_map(|url| Message::PeerGet { url }),
        (arb_status(), any::<u32>(), arb_served_by(), arb_body()).prop_map(
            |(status, version, served_by, body)| Message::GetReply {
                status,
                version,
                served_by,
                body
            }
        ),
        proptest::collection::vec(arb_hint_update(), 0..64).prop_map(Message::UpdateBatch),
        (
            any::<u64>(),
            proptest::collection::vec(arb_hint_update(), 0..64)
        )
            .prop_map(|(sender, updates)| Message::hint_batch(MachineId(sender), updates)),
        (arb_url(), any::<u32>(), arb_body()).prop_map(|(url, version, body)| Message::Push {
            url,
            version,
            body
        }),
        any::<u64>().prop_map(|key| Message::FindNearest { key }),
        prop_oneof![
            Just(Message::FindNearestReply { location: None }),
            any::<u64>().prop_map(|m| Message::FindNearestReply {
                location: Some(MachineId(m))
            }),
        ],
        (arb_url(), any::<u32>(), arb_body()).prop_map(|(url, version, body)| Message::OriginPut {
            url,
            version,
            body
        }),
        Just(Message::Ack),
        Just(Message::Ping),
        Just(Message::Resync),
        Just(Message::StatsRequest),
        proptest::collection::vec(arb_metric_entry(), 0..32).prop_map(Message::StatsReply),
        Just(Message::TraceRequest),
        proptest::collection::vec(arb_trace_event(), 0..64).prop_map(Message::TraceReply),
        (
            arb_meta_op(),
            arb_meta_path(),
            proptest::collection::vec(any::<char>(), 0..16)
        )
            .prop_map(|(op, path, value)| Message::MetaRequest {
                op,
                path,
                value: value.into_iter().collect(),
            }),
        (
            arb_meta_status(),
            proptest::collection::vec(arb_meta_entry(), 0..32)
        )
            .prop_map(|(status, entries)| Message::MetaReply { status, entries }),
    ]
    .boxed()
}

/// Splits `frame` into `(type, payload)` as the assembler would.
fn frame_parts(frame: &[u8]) -> (u8, Bytes) {
    assert!(frame.len() >= 5, "frame shorter than its header");
    let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
    assert_eq!(len + 5, frame.len(), "length prefix must cover the payload");
    (frame[4], Bytes::from(frame[5..].to_vec()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// encode → FrameAssembler → decode is the identity for every frame
    /// type (the path the sharded engine uses).
    #[test]
    fn round_trips_through_assembler(msg in arb_message()) {
        let mut assembler = FrameAssembler::new();
        assembler.extend(&msg.encoded());
        let decoded = assembler.next_message();
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded);
        prop_assert_eq!(decoded.unwrap(), Some(msg));
        prop_assert_eq!(assembler.buffered(), 0);
    }

    /// write_message → read_message is the identity (the blocking path the
    /// client, pool, and origin use).
    #[test]
    fn round_trips_through_streams(msg in arb_message()) {
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).expect("write to vec");
        let decoded = read_message(&mut Cursor::new(buf));
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded);
        prop_assert_eq!(decoded.unwrap(), msg);
    }

    /// Reassembly is byte-boundary independent: delivering the frame in
    /// arbitrary chunks yields the same message.
    #[test]
    fn round_trips_split_delivery(msg in arb_message(), cut in any::<u64>()) {
        let frame = msg.encoded();
        let cut = 1 + (cut as usize) % frame.len().max(1);
        let mut assembler = FrameAssembler::new();
        assembler.extend(&frame[..cut.min(frame.len())]);
        if cut < frame.len() {
            // Nothing complete yet or a full message, never an error.
            let early = assembler.next_message();
            prop_assert!(early.is_ok(), "partial frame errored: {:?}", early);
            assembler.extend(&frame[cut..]);
        }
        let decoded = assembler.next_message();
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded);
        prop_assert_eq!(decoded.unwrap(), Some(msg));
    }

    /// Every strict prefix of a valid payload is rejected with an error —
    /// truncation can never produce a bogus message or a panic.
    #[test]
    fn truncated_payloads_error(msg in arb_message()) {
        let (ty, payload) = frame_parts(&msg.encoded());
        for cut in 0..payload.len() {
            let truncated = payload.slice(0..cut);
            let result = Message::decode(ty, truncated);
            prop_assert!(result.is_err(), "prefix {}/{} decoded: {:?}", cut, payload.len(), result);
        }
    }

    /// Arbitrary single-byte corruption anywhere in the payload either
    /// decodes to something or errors — it never panics.
    #[test]
    fn corrupted_payloads_never_panic(
        msg in arb_message(),
        pos in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let (ty, payload) = frame_parts(&msg.encoded());
        let mut bytes = payload.to_vec();
        if !bytes.is_empty() {
            let pos = (pos as usize) % bytes.len();
            bytes[pos] ^= xor;
        }
        let _ = Message::decode(ty, Bytes::from(bytes));
    }

    /// Fully random `(type, payload)` pairs never panic the decoder.
    #[test]
    fn random_garbage_never_panics(
        ty in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = Message::decode(ty, Bytes::from(payload));
    }

    /// Unknown frame types are always rejected.
    #[test]
    fn unknown_frame_types_error(ty in 19u8..=255, payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert!(Message::decode(ty, Bytes::from(payload)).is_err());
    }

    /// The zero-copy decoder is value-identical to the retained legacy
    /// (copy-everything) decoder on every valid frame.
    #[test]
    fn zero_copy_decode_matches_legacy_on_valid_frames(msg in arb_message()) {
        let (ty, payload) = frame_parts(&msg.encoded());
        let legacy = decode_message_legacy(ty, &payload).expect("legacy rejects valid frame");
        let zero_copy = Message::decode(ty, payload).expect("zero-copy rejects valid frame");
        prop_assert_eq!(&zero_copy, &legacy);
        prop_assert_eq!(zero_copy, msg);
    }

    /// ...and outcome-identical over the malformed-frame corpus: for every
    /// strict prefix and every single-byte corruption of a valid payload,
    /// either both decoders error or both produce the same message.
    #[test]
    fn zero_copy_decode_matches_legacy_on_malformed_frames(
        msg in arb_message(),
        pos in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let (ty, payload) = frame_parts(&msg.encoded());
        for cut in 0..payload.len() {
            let truncated = payload.slice(0..cut);
            let legacy = decode_message_legacy(ty, &truncated);
            let zero_copy = Message::decode(ty, truncated);
            prop_assert!(legacy.is_err() && zero_copy.is_err(),
                "prefix {}/{}: legacy {:?} vs zero-copy {:?}", cut, payload.len(), legacy, zero_copy);
        }
        let mut corrupted = payload.to_vec();
        if !corrupted.is_empty() {
            let pos = (pos as usize) % corrupted.len();
            corrupted[pos] ^= xor;
        }
        let legacy = decode_message_legacy(ty, &corrupted);
        let zero_copy = Message::decode(ty, Bytes::from(corrupted));
        match (legacy, zero_copy) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "decoders diverged: legacy {:?} vs zero-copy {:?}", a, b),
        }
    }

    /// Fully random payloads: the two decoders agree on accept/reject and
    /// on the decoded value when both accept.
    #[test]
    fn zero_copy_decode_matches_legacy_on_garbage(
        ty in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let legacy = decode_message_legacy(ty, &payload);
        let zero_copy = Message::decode(ty, Bytes::from(payload));
        match (legacy, zero_copy) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "decoders diverged: legacy {:?} vs zero-copy {:?}", a, b),
        }
    }
}

/// A length prefix larger than `MAX_FRAME` is rejected up front by both
/// framed readers, before any allocation of that size.
#[test]
fn oversized_frames_rejected() {
    let mut frame = Vec::new();
    frame.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
    frame.push(1); // T_GET
    frame.extend_from_slice(&[0u8; 32]);

    let mut assembler = FrameAssembler::new();
    assembler.extend(&frame);
    assert!(
        assembler.next_message().is_err(),
        "assembler must reject oversized frames"
    );

    assert!(
        read_message(&mut Cursor::new(frame)).is_err(),
        "read_message must reject too"
    );
}

/// A batch whose count field promises more records than `MAX_FRAME` could
/// hold is rejected without attempting the allocation.
#[test]
fn oversized_batch_counts_rejected() {
    for ty in [4u8, 10] {
        // T_UPDATE_BATCH, T_HINT_BATCH
        let mut payload = Vec::new();
        if ty == 10 {
            payload.push(bh_proto::wire::HINT_BATCH_VERSION);
            payload.extend_from_slice(&7u64.to_le_bytes()); // sender
        }
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.extend_from_slice(&[0u8; 40]);
        let err = Message::decode(ty, Bytes::from(payload));
        assert!(err.is_err(), "type {ty} accepted an absurd batch count");
    }
}

/// `HintBatch` decoding is strictly versioned: a version byte newer than
/// ours errors instead of misparsing records.
#[test]
fn hint_batch_future_version_rejected() {
    let update = HintUpdate {
        action: HintAction::Add,
        object: 7,
        machine: MachineId(3),
    };
    let (ty, payload) = frame_parts(&Message::hint_batch(MachineId(1), vec![update]).encoded());
    let mut bytes = payload.to_vec();
    bytes[0] = bh_proto::wire::HINT_BATCH_VERSION + 1;
    assert!(Message::decode(ty, Bytes::from(bytes)).is_err());
}

/// A corrupted batch still *decodes* (authentication is the node's job,
/// not the codec's) but its embedded tag no longer verifies — for any
/// single-byte corruption of the records region.
#[test]
fn corrupted_hint_batch_fails_tag_verification() {
    let updates: Vec<HintUpdate> = (1..=4)
        .map(|i| HintUpdate {
            action: HintAction::Add,
            object: i,
            machine: MachineId(i << 16),
        })
        .collect();
    let sender = MachineId(9 << 16);
    let (ty, payload) = frame_parts(&Message::hint_batch(sender, updates).encoded());
    // Records region: after version(1) + sender(8) + count(4), before the
    // 16-byte trailing tag.
    for pos in 13..payload.len() - 16 {
        let mut bytes = payload.to_vec();
        bytes[pos] ^= 0x01;
        match Message::decode(ty, Bytes::from(bytes)) {
            Ok(Message::HintBatch {
                sender: s,
                updates: u,
                tag,
            }) => {
                assert_ne!(
                    bh_proto::wire::hint_batch_tag(s, &u),
                    tag,
                    "corruption at byte {pos} went undetected"
                );
            }
            Ok(other) => panic!("decoded to a different frame: {other:?}"),
            Err(_) => {} // rejected outright is fine too (bad action code)
        }
    }
}
